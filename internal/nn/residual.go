package nn

import (
	"hadfl/internal/tensor"
)

// Residual wraps a body sub-network with a skip connection:
//
//	y = ReLU(body(x) + shortcut(x))
//
// If Shortcut is nil the skip is the identity, which requires body(x) to
// have the same shape as x. This is the structural element distinguishing
// ResNetTiny from VGGTiny, mirroring ResNet-18 vs VGG-16 in the paper.
type Residual struct {
	Body     []Layer
	Shortcut []Layer // nil means identity

	reluMask []bool
}

// NewResidual builds a residual block with the given body and optional
// projection shortcut.
func NewResidual(body []Layer, shortcut []Layer) *Residual {
	return &Residual{Body: body, Shortcut: shortcut}
}

// Forward implements Layer.
func (r *Residual) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	y := x
	for _, l := range r.Body {
		y = l.Forward(y, train)
	}
	s := x
	for _, l := range r.Shortcut {
		s = l.Forward(s, train)
	}
	out := y.Add(s)
	if train {
		if cap(r.reluMask) < out.Len() {
			r.reluMask = make([]bool, out.Len())
		}
		r.reluMask = r.reluMask[:out.Len()]
	}
	for i, v := range out.Data() {
		if v < 0 {
			out.Data()[i] = 0
			if train {
				r.reluMask[i] = false
			}
		} else if train {
			r.reluMask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (r *Residual) Backward(grad *tensor.Tensor) *tensor.Tensor {
	g := grad.Clone()
	for i := range g.Data() {
		if !r.reluMask[i] {
			g.Data()[i] = 0
		}
	}
	gBody := g
	for i := len(r.Body) - 1; i >= 0; i-- {
		gBody = r.Body[i].Backward(gBody)
	}
	gShort := g
	for i := len(r.Shortcut) - 1; i >= 0; i-- {
		gShort = r.Shortcut[i].Backward(gShort)
	}
	return gBody.Add(gShort)
}

// Params implements Layer.
func (r *Residual) Params() []*tensor.Tensor {
	var ps []*tensor.Tensor
	for _, l := range r.Body {
		ps = append(ps, l.Params()...)
	}
	for _, l := range r.Shortcut {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// Grads implements Layer.
func (r *Residual) Grads() []*tensor.Tensor {
	var gs []*tensor.Tensor
	for _, l := range r.Body {
		gs = append(gs, l.Grads()...)
	}
	for _, l := range r.Shortcut {
		gs = append(gs, l.Grads()...)
	}
	return gs
}
