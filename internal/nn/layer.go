// Package nn implements the neural-network training substrate HADFL runs
// on: layers with explicit forward/backward passes, a softmax
// cross-entropy loss, an SGD optimizer with momentum, and a small model
// zoo (MLP, VGGTiny, ResNetTiny) standing in for the paper's VGG-16 and
// ResNet-18.
//
// Layers cache whatever they need during Forward so the subsequent
// Backward call can produce input and parameter gradients. A Layer is
// therefore stateful and not safe for concurrent use; each simulated
// device owns its own model replica.
package nn

import (
	"fmt"
	"math/rand"

	"hadfl/internal/tensor"
)

// Layer is one differentiable stage of a network.
type Layer interface {
	// Forward computes the layer output for input x. When train is true
	// the layer caches intermediates for Backward and updates any
	// training-time statistics (e.g. batch-norm running averages).
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward receives ∂L/∂output and returns ∂L/∂input, accumulating
	// parameter gradients internally. It must be called after a Forward
	// with train=true.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's learnable tensors (possibly empty).
	Params() []*tensor.Tensor
	// Grads returns gradient tensors aligned with Params.
	Grads() []*tensor.Tensor
}

// Dense is a fully connected layer: y = x·Wᵀ + b, with x of shape
// [batch, in] and W of shape [out, in].
type Dense struct {
	W, B   *tensor.Tensor
	dW, dB *tensor.Tensor
	x      *tensor.Tensor // cached input
}

// NewDense constructs a Dense layer with He-normal weight initialization.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	return &Dense{
		W:  tensor.HeNormal(rng, in, out, in),
		B:  tensor.New(out),
		dW: tensor.New(out, in),
		dB: tensor.New(out),
	}
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 2 || x.Dim(1) != d.W.Dim(1) {
		panic(fmt.Sprintf("nn: Dense input %v, want [batch %d]", x.Shape(), d.W.Dim(1)))
	}
	if train {
		d.x = x
	}
	y := tensor.MatMulTransB(x, d.W)
	tensor.AddRowVector(y, d.B)
	return y
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.x == nil {
		panic("nn: Dense.Backward before Forward(train=true)")
	}
	// dW += gradᵀ·x ; dB += Σ_batch grad ; dx = grad·W
	d.dW.AddInPlace(tensor.MatMulTransA(grad, d.x))
	d.dB.AddInPlace(tensor.SumRows(grad))
	return tensor.MatMul(grad, d.W)
}

// Params implements Layer.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.W, d.B} }

// Grads implements Layer.
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.dW, d.dB} }

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	mask []bool
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out := x.Clone()
	if train {
		if cap(r.mask) < x.Len() {
			r.mask = make([]bool, x.Len())
		}
		r.mask = r.mask[:x.Len()]
	}
	for i, v := range out.Data() {
		if v < 0 {
			out.Data()[i] = 0
			if train {
				r.mask[i] = false
			}
		} else if train {
			r.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	out := grad.Clone()
	for i := range out.Data() {
		if !r.mask[i] {
			out.Data()[i] = 0
		}
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (r *ReLU) Grads() []*tensor.Tensor { return nil }

// Flatten reshapes [N, ...] to [N, rest] for the transition from
// convolutional to dense stages.
type Flatten struct {
	inShape []int
}

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		f.inShape = append(f.inShape[:0], x.Shape()...)
	}
	n := x.Dim(0)
	return x.Reshape(n, x.Len()/n)
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return grad.Reshape(f.inShape...)
}

// Params implements Layer.
func (f *Flatten) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (f *Flatten) Grads() []*tensor.Tensor { return nil }
