// Package nn implements the neural-network training substrate HADFL runs
// on: layers with explicit forward/backward passes, a softmax
// cross-entropy loss, an SGD optimizer with momentum, and a small model
// zoo (MLP, VGGTiny, ResNetTiny) standing in for the paper's VGG-16 and
// ResNet-18.
//
// Layers cache whatever they need during Forward so the subsequent
// Backward call can produce input and parameter gradients. A Layer is
// therefore stateful and not safe for concurrent use; each simulated
// device owns its own model replica.
//
// Every layer keeps persistent activation and gradient buffers (resized
// lazily via tensor.Ensure, or recycled through a tensor.Arena) and
// routes its linear algebra through the in-place kernels of
// internal/tensor, so a steady-state training step — forward, loss,
// backward, optimizer update at a fixed batch shape — performs zero
// heap allocations after the first step warms the buffers up (see
// alloc_test.go for the enforced guarantee). Two aliasing rules keep
// the buffer reuse sound: a layer may read its cached input during
// Backward (upstream buffers are only rewritten by the *next* Forward),
// and Backward must never mutate the incoming gradient in place — it
// writes to the layer's own output-gradient buffer.
package nn

import (
	"fmt"
	"math/rand"

	"hadfl/internal/tensor"
)

// Layer is one differentiable stage of a network.
type Layer interface {
	// Forward computes the layer output for input x. When train is true
	// the layer caches intermediates for Backward and updates any
	// training-time statistics (e.g. batch-norm running averages).
	// The returned tensor is a buffer owned by the layer, valid until
	// its next Forward call.
	Forward(x *tensor.Tensor, train bool) *tensor.Tensor
	// Backward receives ∂L/∂output and returns ∂L/∂input, accumulating
	// parameter gradients internally. It must be called after a Forward
	// with train=true. It must not modify grad; the returned tensor is
	// a buffer owned by the layer, valid until its next Backward call.
	Backward(grad *tensor.Tensor) *tensor.Tensor
	// Params returns the layer's learnable tensors (possibly empty).
	Params() []*tensor.Tensor
	// Grads returns gradient tensors aligned with Params.
	Grads() []*tensor.Tensor
}

// Dense is a fully connected layer: y = x·Wᵀ + b, with x of shape
// [batch, in] and W of shape [out, in].
type Dense struct {
	W, B   *tensor.Tensor
	dW, dB *tensor.Tensor
	x      *tensor.Tensor // cached input
	y, dx  *tensor.Tensor // persistent output / input-gradient buffers
}

// NewDense constructs a Dense layer with He-normal weight initialization.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	return &Dense{
		W:  tensor.HeNormal(rng, in, out, in),
		B:  tensor.New(out),
		dW: tensor.New(out, in),
		dB: tensor.New(out),
	}
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 2 || x.Dim(1) != d.W.Dim(1) {
		panic(fmt.Sprintf("nn: Dense input %v, want [batch %d]", x.Shape(), d.W.Dim(1)))
	}
	if train {
		d.x = x
	}
	d.y = tensor.Ensure(d.y, x.Dim(0), d.W.Dim(0))
	tensor.MatMulTransBBiasInto(d.y, x, d.W, d.B)
	return d.y
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.x == nil {
		panic("nn: Dense.Backward before Forward(train=true)")
	}
	// dW += gradᵀ·x ; dB += Σ_batch grad ; dx = grad·W
	tensor.MatMulTransAAccInto(d.dW, grad, d.x)
	tensor.SumRowsAccInto(d.dB, grad)
	d.dx = tensor.Ensure(d.dx, d.x.Dim(0), d.W.Dim(1))
	tensor.MatMulInto(d.dx, grad, d.W)
	return d.dx
}

// Params implements Layer.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.W, d.B} }

// Grads implements Layer.
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.dW, d.dB} }

// ReLU applies max(0, x) element-wise.
type ReLU struct {
	mask    []bool
	out, dx *tensor.Tensor
}

// NewReLU returns a ReLU activation layer.
func NewReLU() *ReLU { return &ReLU{} }

// Forward implements Layer.
func (r *ReLU) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	r.out = tensor.Ensure(r.out, x.Shape()...)
	if train {
		if cap(r.mask) < x.Len() {
			r.mask = make([]bool, x.Len())
		}
		r.mask = r.mask[:x.Len()]
	}
	xd, od := x.Data(), r.out.Data()
	for i, v := range xd {
		if v < 0 {
			od[i] = 0
			if train {
				r.mask[i] = false
			}
		} else {
			od[i] = v
			if train {
				r.mask[i] = true
			}
		}
	}
	return r.out
}

// Backward implements Layer.
func (r *ReLU) Backward(grad *tensor.Tensor) *tensor.Tensor {
	r.dx = tensor.Ensure(r.dx, grad.Shape()...)
	gd, od := grad.Data(), r.dx.Data()
	for i, v := range gd {
		if r.mask[i] {
			od[i] = v
		} else {
			od[i] = 0
		}
	}
	return r.dx
}

// Params implements Layer.
func (r *ReLU) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (r *ReLU) Grads() []*tensor.Tensor { return nil }

// Flatten reshapes [N, ...] to [N, rest] for the transition from
// convolutional to dense stages.
type Flatten struct {
	inShape []int
	view    *tensor.Tensor // cached forward view (aliases the input)
	gview   *tensor.Tensor // cached backward view (aliases the gradient)
}

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Forward implements Layer.
func (f *Flatten) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		f.inShape = append(f.inShape[:0], x.Shape()...)
	}
	n := x.Dim(0)
	f.view = tensor.AsShape(f.view, x, n, x.Len()/n)
	return f.view
}

// Backward implements Layer.
func (f *Flatten) Backward(grad *tensor.Tensor) *tensor.Tensor {
	f.gview = tensor.AsShape(f.gview, grad, f.inShape...)
	return f.gview
}

// Params implements Layer.
func (f *Flatten) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (f *Flatten) Grads() []*tensor.Tensor { return nil }
