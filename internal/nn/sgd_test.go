package nn

import (
	"math"
	"math/rand"
	"testing"

	"hadfl/internal/tensor"
)

func TestSGDReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(rng, 4, []int{16}, 3)
	opt := NewSGD(0.1, 0.9, 0)
	x := tensor.RandNormal(rng, 0, 1, 12, 4)
	labels := make([]int, 12)
	for i := range labels {
		labels[i] = i % 3
	}
	first, _ := SoftmaxCrossEntropy(m.Forward(x, true), labels)
	var last float64
	for i := 0; i < 60; i++ {
		m.ZeroGrads()
		logits := m.Forward(x, true)
		loss, g := SoftmaxCrossEntropy(logits, labels)
		m.Backward(g)
		opt.Step(m)
		last = loss
	}
	if last >= first {
		t.Fatalf("SGD did not reduce loss: first=%v last=%v", first, last)
	}
	if last > 0.1 {
		t.Fatalf("SGD failed to fit 12 points: final loss %v", last)
	}
}

func TestSGDStepMatchesManualUpdate(t *testing.T) {
	// Single scalar "model": one Dense 1→1 without bias influence.
	d := &Dense{
		W:  tensor.FromSlice([]float64{2}, 1, 1),
		B:  tensor.New(1),
		dW: tensor.FromSlice([]float64{0.5}, 1, 1),
		dB: tensor.New(1),
	}
	m := NewModel("scalar", d)
	opt := NewSGD(0.1, 0, 0)
	opt.Step(m)
	if got := d.W.Data()[0]; math.Abs(got-(2-0.1*0.5)) > 1e-12 {
		t.Fatalf("W after step = %v", got)
	}
	if d.dW.Data()[0] != 0 {
		t.Fatal("Step must zero gradients")
	}
}

func TestSGDMomentumAccumulates(t *testing.T) {
	d := &Dense{
		W:  tensor.FromSlice([]float64{0}, 1, 1),
		B:  tensor.New(1),
		dW: tensor.New(1, 1),
		dB: tensor.New(1),
	}
	m := NewModel("scalar", d)
	opt := NewSGD(1, 0.5, 0)
	// Two steps with constant unit gradient: v1=1, w=-1; v2=1.5, w=-2.5.
	d.dW.Data()[0] = 1
	opt.Step(m)
	if got := d.W.Data()[0]; math.Abs(got+1) > 1e-12 {
		t.Fatalf("after step 1, W=%v want -1", got)
	}
	d.dW.Data()[0] = 1
	opt.Step(m)
	if got := d.W.Data()[0]; math.Abs(got+2.5) > 1e-12 {
		t.Fatalf("after step 2, W=%v want -2.5", got)
	}
}

func TestSGDWeightDecayOnlyOnMatrices(t *testing.T) {
	d := &Dense{
		W:  tensor.FromSlice([]float64{1}, 1, 1),
		B:  tensor.FromSlice([]float64{1}, 1),
		dW: tensor.New(1, 1),
		dB: tensor.New(1),
	}
	m := NewModel("scalar", d)
	opt := NewSGD(0.1, 0, 0.5)
	opt.Step(m)
	// W (rank 2) decays: 1 - 0.1*0.5*1 = 0.95. B (rank 1) must not.
	if got := d.W.Data()[0]; math.Abs(got-0.95) > 1e-12 {
		t.Fatalf("W after decay = %v, want 0.95", got)
	}
	if got := d.B.Data()[0]; got != 1 {
		t.Fatalf("B after step = %v, want 1 (no decay on rank-1)", got)
	}
}

func TestSGDResetClearsMomentum(t *testing.T) {
	d := &Dense{
		W:  tensor.New(1, 1),
		B:  tensor.New(1),
		dW: tensor.New(1, 1),
		dB: tensor.New(1),
	}
	m := NewModel("scalar", d)
	opt := NewSGD(1, 0.9, 0)
	d.dW.Data()[0] = 1
	opt.Step(m)
	opt.Reset()
	d.dW.Data()[0] = 1
	opt.Step(m)
	// Without reset the second step would include momentum 0.9·1;
	// with reset both steps move exactly -1.
	if got := d.W.Data()[0]; math.Abs(got+2) > 1e-12 {
		t.Fatalf("W = %v, want -2 after reset between steps", got)
	}
}

func TestBatchNormRunningStatsNotMovedBySGD(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewModel("bn",
		NewDense(rng, 4, 6),
		NewBatchNorm(6),
		NewDense(rng, 6, 2),
	)
	bn := m.Layers[1].(*BatchNorm)
	x := tensor.RandNormal(rng, 0, 1, 8, 4)
	opt := NewSGD(0.1, 0.9, 1e-2)
	logits := m.Forward(x, true)
	_, g := SoftmaxCrossEntropy(logits, []int{0, 1, 0, 1, 0, 1, 0, 1})
	m.Backward(g)
	before := bn.RunMean.Clone()
	beforeVar := bn.RunVar.Clone()
	opt.Step(m)
	if !bn.RunMean.Equal(before, 0) || !bn.RunVar.Equal(beforeVar, 0) {
		t.Fatal("optimizer must not move batch-norm running statistics")
	}
}

func TestSGDResetKeepsVelocityStorage(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP(rng, 4, []int{8}, 2)
	opt := NewSGD(0.1, 0.9, 0)
	x := tensor.RandNormal(rng, 0, 1, 4, 4)
	step := func() {
		m.ZeroGrads()
		loss, g := SoftmaxCrossEntropy(m.Forward(x, true), []int{0, 1, 0, 1})
		_ = loss
		m.Backward(g)
		opt.Step(m)
	}
	step()
	before := make([]*tensor.Tensor, len(opt.velocity))
	copy(before, opt.velocity)
	// SetParameters resets the optimizer every sync round; the velocity
	// buffers must be zeroed in place, not reallocated per round.
	opt.Reset()
	for i, v := range opt.velocity {
		if v != before[i] {
			t.Fatalf("velocity[%d] reallocated by Reset", i)
		}
		for j, x := range v.Data() {
			if x != 0 {
				t.Fatalf("velocity[%d][%d] = %v after Reset, want 0", i, j, x)
			}
		}
	}
	step()
	for i, v := range opt.velocity {
		if v != before[i] {
			t.Fatalf("velocity[%d] reallocated by Step after Reset", i)
		}
	}
}
