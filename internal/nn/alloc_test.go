package nn

import (
	"math/rand"
	"testing"

	"hadfl/internal/tensor"
)

// The zero-allocation guarantee: after warm-up, a steady-state training
// step (forward, loss, backward, optimizer update at a fixed batch
// shape) performs no heap allocations. The guarantee covers the serial
// kernel path — parallel kernels spend a few small allocations per call
// on goroutine coordination — so the test pins tensor parallelism to 1.
func testZeroAllocStep(t *testing.T, m *Model, x *tensor.Tensor, labels []int) {
	t.Helper()
	prev := tensor.Parallelism()
	tensor.SetParallelism(1)
	defer tensor.SetParallelism(prev)

	opt := NewSGD(0.05, 0.9, 1e-4)
	grad := tensor.New(x.Dim(0), 1) // resized to the logits shape below
	step := func() {
		logits := m.Forward(x, true)
		grad = tensor.Ensure(grad, logits.Dim(0), logits.Dim(1))
		loss := SoftmaxCrossEntropyInto(grad, logits, labels)
		_ = loss
		m.Backward(grad)
		opt.Step(m)
	}
	for i := 0; i < 3; i++ { // warm up layer buffers, optimizer state
		step()
	}
	if allocs := testing.AllocsPerRun(10, step); allocs != 0 {
		t.Fatalf("steady-state training step allocates %.1f times per step, want 0", allocs)
	}
}

// The evaluation-side guarantee: a steady-state scoring step — forward
// in inference mode plus the fused per-sample loss + accuracy kernel
// at a fixed batch shape — performs no heap allocations. Same
// serial-kernel scope as the training guard above.
func testZeroAllocEval(t *testing.T, m *Model, x *tensor.Tensor, labels []int) {
	t.Helper()
	prev := tensor.Parallelism()
	tensor.SetParallelism(1)
	defer tensor.SetParallelism(prev)

	perSample := make([]float64, x.Dim(0))
	evalStep := func() {
		logits := m.Forward(x, false)
		correct := SoftmaxCrossEntropyEvalInto(perSample, logits, labels)
		_ = correct
	}
	for i := 0; i < 3; i++ { // warm up layer buffers
		evalStep()
	}
	if allocs := testing.AllocsPerRun(10, evalStep); allocs != 0 {
		t.Fatalf("steady-state eval step allocates %.1f times per step, want 0", allocs)
	}
}

func TestTrainStepZeroAllocResMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewResMLP(rng, 32, 32, 2, 10)
	x := tensor.RandNormal(rng, 0, 1, 64, 32)
	labels := make([]int, 64)
	for i := range labels {
		labels[i] = i % 10
	}
	testZeroAllocStep(t, m, x, labels)
}

func TestTrainStepZeroAllocVGGTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("convolutional zero-alloc check skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(2))
	m := NewVGGTiny(rng, 3, 8, 10)
	x := tensor.RandNormal(rng, 0, 1, 16, 3, 8, 8)
	labels := make([]int, 16)
	for i := range labels {
		labels[i] = i % 10
	}
	testZeroAllocStep(t, m, x, labels)
}

func TestTrainStepZeroAllocResNetTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("convolutional zero-alloc check skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(3))
	m := NewResNetTiny(rng, 3, 8, 10)
	x := tensor.RandNormal(rng, 0, 1, 16, 3, 8, 8)
	labels := make([]int, 16)
	for i := range labels {
		labels[i] = i % 10
	}
	testZeroAllocStep(t, m, x, labels)
}

func TestEvalStepZeroAllocResMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewResMLP(rng, 32, 32, 2, 10)
	x := tensor.RandNormal(rng, 0, 1, 64, 32)
	labels := make([]int, 64)
	for i := range labels {
		labels[i] = i % 10
	}
	testZeroAllocEval(t, m, x, labels)
}

func TestEvalStepZeroAllocResNetTiny(t *testing.T) {
	if testing.Short() {
		t.Skip("convolutional zero-alloc check skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(5))
	m := NewResNetTiny(rng, 3, 8, 10)
	x := tensor.RandNormal(rng, 0, 1, 16, 3, 8, 8)
	labels := make([]int, 16)
	for i := range labels {
		labels[i] = i % 10
	}
	testZeroAllocEval(t, m, x, labels)
}
