package nn

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstantLR(t *testing.T) {
	s := ConstantLR(0.05)
	for _, tt := range []int{0, 1, 1000} {
		if s.LR(tt) != 0.05 {
			t.Fatalf("LR(%d) = %v", tt, s.LR(tt))
		}
	}
}

func TestStepDecay(t *testing.T) {
	s := StepDecay{Base: 1, Gamma: 0.1, Every: 10}
	cases := map[int]float64{0: 1, 9: 1, 10: 0.1, 19: 0.1, 20: 0.01}
	for tt, want := range cases {
		if got := s.LR(tt); math.Abs(got-want) > 1e-12 {
			t.Fatalf("LR(%d) = %v, want %v", tt, got, want)
		}
	}
}

func TestStepDecayValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every=0 did not panic")
		}
	}()
	StepDecay{Base: 1, Gamma: 0.5, Every: 0}.LR(1)
}

func TestWarmupLinear(t *testing.T) {
	s := WarmupLinear{Base: 1, Scale: 0.1, WarmupSteps: 10}
	if got := s.LR(0); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("LR(0) = %v", got)
	}
	if got := s.LR(5); math.Abs(got-0.55) > 1e-12 {
		t.Fatalf("LR(5) = %v", got)
	}
	if got := s.LR(10); got != 1 {
		t.Fatalf("LR(10) = %v", got)
	}
	if got := s.LR(100); got != 1 {
		t.Fatalf("LR(100) = %v", got)
	}
}

func TestCosineAnnealing(t *testing.T) {
	s := CosineAnnealing{Base: 1, Floor: 0.1, TotalSteps: 100}
	if got := s.LR(0); math.Abs(got-1) > 1e-12 {
		t.Fatalf("LR(0) = %v", got)
	}
	mid := s.LR(50)
	if math.Abs(mid-0.55) > 1e-9 {
		t.Fatalf("LR(50) = %v, want 0.55", mid)
	}
	if got := s.LR(100); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("LR(100) = %v", got)
	}
	if got := s.LR(500); got != 0.1 {
		t.Fatalf("LR past end = %v", got)
	}
}

func TestChain(t *testing.T) {
	s := Chain{
		Head:      WarmupLinear{Base: 1, Scale: 0.1, WarmupSteps: 10},
		HeadSteps: 10,
		Tail:      StepDecay{Base: 1, Gamma: 0.5, Every: 10},
	}
	if got := s.LR(0); math.Abs(got-0.1) > 1e-12 {
		t.Fatalf("LR(0) = %v", got)
	}
	if got := s.LR(10); got != 1 { // tail step 0
		t.Fatalf("LR(10) = %v", got)
	}
	if got := s.LR(20); got != 0.5 { // tail step 10
		t.Fatalf("LR(20) = %v", got)
	}
}

func TestApplySchedule(t *testing.T) {
	opt := NewSGD(999, 0, 0)
	ApplySchedule(opt, ConstantLR(0.01), 5)
	if opt.LR != 0.01 {
		t.Fatalf("LR = %v", opt.LR)
	}
}

// Property: cosine annealing is monotonically non-increasing and bounded
// by [Floor, Base].
func TestPropertyCosineMonotone(t *testing.T) {
	f := func(stepRaw uint16) bool {
		s := CosineAnnealing{Base: 1, Floor: 0.05, TotalSteps: 200}
		tt := int(stepRaw) % 220
		v := s.LR(tt)
		if v < s.Floor-1e-12 || v > s.Base+1e-12 {
			return false
		}
		if tt > 0 && s.LR(tt-1) < v-1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: warm-up is monotonically non-decreasing until Base.
func TestPropertyWarmupMonotone(t *testing.T) {
	f := func(stepRaw uint16) bool {
		s := WarmupLinear{Base: 2, Scale: 0.25, WarmupSteps: 50}
		tt := int(stepRaw) % 60
		v := s.LR(tt)
		if v < 0.5-1e-12 || v > 2+1e-12 {
			return false
		}
		if tt > 0 && s.LR(tt-1) > v+1e-12 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
