package nn

import (
	"math/rand"
	"testing"

	"hadfl/internal/tensor"
)

func benchTrainStep(b *testing.B, m *Model, x *tensor.Tensor, labels []int) {
	b.Helper()
	opt := NewSGD(0.05, 0.9, 0)
	var grad *tensor.Tensor
	b.ReportAllocs() // steady-state steps must report 0 allocs/op
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ZeroGrads()
		logits := m.Forward(x, true)
		grad = tensor.Ensure(grad, logits.Dim(0), logits.Dim(1))
		SoftmaxCrossEntropyInto(grad, logits, labels)
		m.Backward(grad)
		opt.Step(m)
	}
}

func BenchmarkTrainStepResMLP(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := NewResMLP(rng, 32, 32, 2, 10)
	x := tensor.RandNormal(rng, 0, 1, 64, 32)
	labels := make([]int, 64)
	for i := range labels {
		labels[i] = i % 10
	}
	benchTrainStep(b, m, x, labels)
}

func BenchmarkTrainStepResNetTiny(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	m := NewResNetTiny(rng, 3, 8, 10)
	x := tensor.RandNormal(rng, 0, 1, 32, 3, 8, 8)
	labels := make([]int, 32)
	for i := range labels {
		labels[i] = i % 10
	}
	benchTrainStep(b, m, x, labels)
}

func BenchmarkTrainStepVGGTiny(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	m := NewVGGTiny(rng, 3, 8, 10)
	x := tensor.RandNormal(rng, 0, 1, 32, 3, 8, 8)
	labels := make([]int, 32)
	for i := range labels {
		labels[i] = i % 10
	}
	benchTrainStep(b, m, x, labels)
}

func BenchmarkParametersRoundTrip(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	m := NewResMLP(rng, 32, 32, 2, 10)
	b.ReportMetric(float64(m.NumParams()), "params")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SetParameters(m.Parameters())
	}
}
