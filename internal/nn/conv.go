package nn

import (
	"fmt"
	"math/rand"

	"hadfl/internal/tensor"
)

// Conv2D is a 2-D convolution layer over [N, C, H, W] inputs with square
// kernels, implemented via im2col + matmul. The im2col matrix, the
// product buffer and both gradient matrices are recycled through a
// per-layer arena, so steady-state steps allocate nothing.
type Conv2D struct {
	W, B        *tensor.Tensor // W: [OC, C, K, K], B: [OC]
	dW, dB      *tensor.Tensor
	Stride, Pad int

	arena   tensor.Arena
	cols    *tensor.Tensor // cached im2col matrix (Forward → Backward)
	inShape []int
	// Persistent views/buffers.
	wmat, dwmat *tensor.Tensor // matrix views of W / dW
	prod, out   *tensor.Tensor
	dx          *tensor.Tensor
}

// NewConv2D constructs a Conv2D with He-normal initialization.
func NewConv2D(rng *rand.Rand, inCh, outCh, kernel, stride, pad int) *Conv2D {
	fanIn := inCh * kernel * kernel
	return &Conv2D{
		W:      tensor.HeNormal(rng, fanIn, outCh, inCh, kernel, kernel),
		B:      tensor.New(outCh),
		dW:     tensor.New(outCh, inCh, kernel, kernel),
		dB:     tensor.New(outCh),
		Stride: stride,
		Pad:    pad,
	}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 4 || x.Dim(1) != c.W.Dim(1) {
		panic(fmt.Sprintf("nn: Conv2D input %v, want [N %d H W]", x.Shape(), c.W.Dim(1)))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	k := c.W.Dim(2)
	oc := c.W.Dim(0)
	oh := tensor.Conv2DShape(h, k, c.Stride, c.Pad)
	ow := tensor.Conv2DShape(w, k, c.Stride, c.Pad)

	if c.cols != nil {
		// Previous step's matrix (already consumed by Backward, or
		// never needed): recycle it.
		c.arena.Put(c.cols)
	}
	c.cols = c.arena.Get(n*oh*ow, c.W.Len()/oc) // [N·OH·OW, C·K·K]
	tensor.Im2ColInto(c.cols, x, k, k, c.Stride, c.Pad)
	c.wmat = tensor.AsShape(c.wmat, c.W, oc, c.W.Len()/oc) // [OC, C·K·K]
	c.prod = tensor.Ensure(c.prod, n*oh*ow, oc)            // [N·OH·OW, OC]
	tensor.MatMulTransBBiasInto(c.prod, c.cols, c.wmat, c.B)

	if train {
		c.inShape = append(c.inShape[:0], x.Shape()...)
	}
	c.out = tensor.Ensure(c.out, n, oc, oh, ow)
	channelsLastToFirstInto(c.out, c.prod, n, oc, oh, ow)
	return c.out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.cols == nil {
		panic("nn: Conv2D.Backward before Forward(train=true)")
	}
	n, oc, oh, ow := grad.Dim(0), grad.Dim(1), grad.Dim(2), grad.Dim(3)
	g := c.arena.Get(n*oh*ow, oc)
	channelsFirstToLastInto(g, grad) // [N·OH·OW, OC]

	// dW += gᵀ·cols viewed as a matrix; dB += column sums of g.
	c.dwmat = tensor.AsShape(c.dwmat, c.dW, oc, c.dW.Len()/oc)
	tensor.MatMulTransAAccInto(c.dwmat, g, c.cols)
	tensor.SumRowsAccInto(c.dB, g)

	// dx = Col2Im(g·Wmat).
	dcols := c.arena.Get(n*oh*ow, c.W.Len()/oc)
	tensor.MatMulInto(dcols, g, c.wmat)
	c.arena.Put(g)
	k := c.W.Dim(2)
	in := c.inShape
	c.dx = tensor.Ensure(c.dx, in...)
	tensor.Col2ImInto(c.dx, dcols, k, k, c.Stride, c.Pad)
	c.arena.Put(dcols)
	c.arena.Put(c.cols)
	c.cols = nil
	return c.dx
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.dW, c.dB} }

// channelsLastToFirstInto converts a [N·OH·OW, OC] matrix into an
// [N, OC, OH, OW] tensor.
func channelsLastToFirstInto(out, m *tensor.Tensor, n, oc, oh, ow int) {
	md, od := m.Data(), out.Data()
	plane := oh * ow
	for ni := 0; ni < n; ni++ {
		for p := 0; p < plane; p++ {
			row := (ni*plane + p) * oc
			for ci := 0; ci < oc; ci++ {
				od[(ni*oc+ci)*plane+p] = md[row+ci]
			}
		}
	}
}

// channelsFirstToLastInto converts [N, OC, OH, OW] into [N·OH·OW, OC].
func channelsFirstToLastInto(out, t *tensor.Tensor) {
	n, oc, oh, ow := t.Dim(0), t.Dim(1), t.Dim(2), t.Dim(3)
	plane := oh * ow
	td, od := t.Data(), out.Data()
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < oc; ci++ {
			base := (ni*oc + ci) * plane
			for p := 0; p < plane; p++ {
				od[(ni*plane+p)*oc+ci] = td[base+p]
			}
		}
	}
}

// MaxPool is a max-pooling layer with a square window.
type MaxPool struct {
	Window, Stride int
	arg            []int
	inShape        []int
	out, dx        *tensor.Tensor
}

// NewMaxPool returns a max-pooling layer.
func NewMaxPool(window, stride int) *MaxPool { return &MaxPool{Window: window, Stride: stride} }

// Forward implements Layer.
func (p *MaxPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 4 {
		panic(fmt.Sprintf("nn: MaxPool input %v, want [N C H W]", x.Shape()))
	}
	n, c := x.Dim(0), x.Dim(1)
	oh := tensor.Conv2DShape(x.Dim(2), p.Window, p.Stride, 0)
	ow := tensor.Conv2DShape(x.Dim(3), p.Window, p.Stride, 0)
	p.out = tensor.Ensure(p.out, n, c, oh, ow)
	if cap(p.arg) < p.out.Len() {
		p.arg = make([]int, p.out.Len())
	}
	p.arg = p.arg[:p.out.Len()]
	tensor.MaxPool2DInto(p.out, p.arg, x, p.Window, p.Stride)
	if train {
		p.inShape = append(p.inShape[:0], x.Shape()...)
	}
	return p.out
}

// Backward implements Layer.
func (p *MaxPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	p.dx = tensor.Ensure(p.dx, p.inShape...)
	tensor.MaxUnpool2DInto(p.dx, grad, p.arg)
	return p.dx
}

// Params implements Layer.
func (p *MaxPool) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (p *MaxPool) Grads() []*tensor.Tensor { return nil }

// GlobalAvgPool averages each channel plane, producing [N, C] from
// [N, C, H, W].
type GlobalAvgPool struct {
	h, w    int
	out, dx *tensor.Tensor
}

// NewGlobalAvgPool returns a global average pooling layer.
func NewGlobalAvgPool() *GlobalAvgPool { return &GlobalAvgPool{} }

// Forward implements Layer.
func (p *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		p.h, p.w = x.Dim(2), x.Dim(3)
	}
	p.out = tensor.Ensure(p.out, x.Dim(0), x.Dim(1))
	tensor.AvgPoolGlobalInto(p.out, x)
	return p.out
}

// Backward implements Layer.
func (p *GlobalAvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	p.dx = tensor.Ensure(p.dx, grad.Dim(0), grad.Dim(1), p.h, p.w)
	tensor.AvgUnpoolGlobalInto(p.dx, grad)
	return p.dx
}

// Params implements Layer.
func (p *GlobalAvgPool) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (p *GlobalAvgPool) Grads() []*tensor.Tensor { return nil }
