package nn

import (
	"fmt"
	"math/rand"

	"hadfl/internal/tensor"
)

// Conv2D is a 2-D convolution layer over [N, C, H, W] inputs with square
// kernels, implemented via im2col + matmul.
type Conv2D struct {
	W, B        *tensor.Tensor // W: [OC, C, K, K], B: [OC]
	dW, dB      *tensor.Tensor
	Stride, Pad int

	cols    *tensor.Tensor // cached im2col matrix
	inShape []int
}

// NewConv2D constructs a Conv2D with He-normal initialization.
func NewConv2D(rng *rand.Rand, inCh, outCh, kernel, stride, pad int) *Conv2D {
	fanIn := inCh * kernel * kernel
	return &Conv2D{
		W:      tensor.HeNormal(rng, fanIn, outCh, inCh, kernel, kernel),
		B:      tensor.New(outCh),
		dW:     tensor.New(outCh, inCh, kernel, kernel),
		dB:     tensor.New(outCh),
		Stride: stride,
		Pad:    pad,
	}
}

// Forward implements Layer.
func (c *Conv2D) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if x.Dims() != 4 || x.Dim(1) != c.W.Dim(1) {
		panic(fmt.Sprintf("nn: Conv2D input %v, want [N %d H W]", x.Shape(), c.W.Dim(1)))
	}
	n, h, w := x.Dim(0), x.Dim(2), x.Dim(3)
	k := c.W.Dim(2)
	oc := c.W.Dim(0)
	oh := tensor.Conv2DShape(h, k, c.Stride, c.Pad)
	ow := tensor.Conv2DShape(w, k, c.Stride, c.Pad)

	cols := tensor.Im2Col(x, k, k, c.Stride, c.Pad) // [N·OH·OW, C·K·K]
	wmat := c.W.Reshape(oc, c.W.Len()/oc)           // [OC, C·K·K]
	prod := tensor.MatMulTransB(cols, wmat)         // [N·OH·OW, OC]
	tensor.AddRowVector(prod, c.B)

	if train {
		c.cols = cols
		c.inShape = append(c.inShape[:0], x.Shape()...)
	}
	return channelsLastToFirst(prod, n, oc, oh, ow)
}

// Backward implements Layer.
func (c *Conv2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if c.cols == nil {
		panic("nn: Conv2D.Backward before Forward(train=true)")
	}
	n, oc, oh, ow := grad.Dim(0), grad.Dim(1), grad.Dim(2), grad.Dim(3)
	g := channelsFirstToLast(grad) // [N·OH·OW, OC]
	_ = n
	_ = oh
	_ = ow

	// dW = gᵀ·cols reshaped; dB = column sums of g.
	dwFlat := tensor.MatMulTransA(g, c.cols) // [OC, C·K·K]
	c.dW.AddInPlace(dwFlat.Reshape(c.dW.Shape()...))
	c.dB.AddInPlace(tensor.SumRows(g))

	// dx = Col2Im(g·Wmat).
	wmat := c.W.Reshape(oc, c.W.Len()/oc)
	dcols := tensor.MatMul(g, wmat) // [N·OH·OW, C·K·K]
	k := c.W.Dim(2)
	in := c.inShape
	return tensor.Col2Im(dcols, in[0], in[1], in[2], in[3], k, k, c.Stride, c.Pad)
}

// Params implements Layer.
func (c *Conv2D) Params() []*tensor.Tensor { return []*tensor.Tensor{c.W, c.B} }

// Grads implements Layer.
func (c *Conv2D) Grads() []*tensor.Tensor { return []*tensor.Tensor{c.dW, c.dB} }

// channelsLastToFirst converts a [N·OH·OW, OC] matrix into an
// [N, OC, OH, OW] tensor.
func channelsLastToFirst(m *tensor.Tensor, n, oc, oh, ow int) *tensor.Tensor {
	out := tensor.New(n, oc, oh, ow)
	md, od := m.Data(), out.Data()
	plane := oh * ow
	for ni := 0; ni < n; ni++ {
		for p := 0; p < plane; p++ {
			row := (ni*plane + p) * oc
			for ci := 0; ci < oc; ci++ {
				od[(ni*oc+ci)*plane+p] = md[row+ci]
			}
		}
	}
	return out
}

// channelsFirstToLast converts [N, OC, OH, OW] into [N·OH·OW, OC].
func channelsFirstToLast(t *tensor.Tensor) *tensor.Tensor {
	n, oc, oh, ow := t.Dim(0), t.Dim(1), t.Dim(2), t.Dim(3)
	plane := oh * ow
	out := tensor.New(n*plane, oc)
	td, od := t.Data(), out.Data()
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < oc; ci++ {
			base := (ni*oc + ci) * plane
			for p := 0; p < plane; p++ {
				od[(ni*plane+p)*oc+ci] = td[base+p]
			}
		}
	}
	return out
}

// MaxPool is a max-pooling layer with a square window.
type MaxPool struct {
	Window, Stride int
	arg            []int
	inShape        []int
}

// NewMaxPool returns a max-pooling layer.
func NewMaxPool(window, stride int) *MaxPool { return &MaxPool{Window: window, Stride: stride} }

// Forward implements Layer.
func (p *MaxPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	out, arg := tensor.MaxPool2D(x, p.Window, p.Stride)
	if train {
		p.arg = arg
		p.inShape = append(p.inShape[:0], x.Shape()...)
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return tensor.MaxUnpool2D(grad, p.arg, p.inShape)
}

// Params implements Layer.
func (p *MaxPool) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (p *MaxPool) Grads() []*tensor.Tensor { return nil }

// GlobalAvgPool averages each channel plane, producing [N, C] from
// [N, C, H, W].
type GlobalAvgPool struct {
	h, w int
}

// NewGlobalAvgPool returns a global average pooling layer.
func NewGlobalAvgPool() *GlobalAvgPool { return &GlobalAvgPool{} }

// Forward implements Layer.
func (p *GlobalAvgPool) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if train {
		p.h, p.w = x.Dim(2), x.Dim(3)
	}
	return tensor.AvgPoolGlobal(x)
}

// Backward implements Layer.
func (p *GlobalAvgPool) Backward(grad *tensor.Tensor) *tensor.Tensor {
	return tensor.AvgUnpoolGlobal(grad, p.h, p.w)
}

// Params implements Layer.
func (p *GlobalAvgPool) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (p *GlobalAvgPool) Grads() []*tensor.Tensor { return nil }
