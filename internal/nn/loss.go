package nn

import (
	"fmt"
	"math"

	"hadfl/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss over a batch of
// logits [N, C] against integer labels, and the gradient ∂L/∂logits
// (already divided by N, matching Eq. 1's 1/B factor).
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor) {
	grad = tensor.New(logits.Dim(0), logits.Dim(1))
	loss = SoftmaxCrossEntropyInto(grad, logits, labels)
	return loss, grad
}

// SoftmaxCrossEntropyInto is SoftmaxCrossEntropy writing ∂L/∂logits
// into a caller-owned buffer of the logits' shape, the zero-allocation
// path used by the training loops.
func SoftmaxCrossEntropyInto(grad, logits *tensor.Tensor, labels []int) (loss float64) {
	if logits.Dims() != 2 {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy logits %v, want 2-D", logits.Shape()))
	}
	n, c := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy: %d rows vs %d labels", n, len(labels)))
	}
	if !grad.SameShape(logits) {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropyInto grad %v, logits %v", grad.Shape(), logits.Shape()))
	}
	ld, gd := logits.Data(), grad.Data()
	invN := 1.0 / float64(n)
	for i := 0; i < n; i++ {
		row := ld[i*c : (i+1)*c]
		y := labels[i]
		if y < 0 || y >= c {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, c))
		}
		// Numerically stable log-sum-exp.
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		for _, v := range row {
			sum += math.Exp(v - maxV)
		}
		logSum := maxV + math.Log(sum)
		loss += (logSum - row[y]) * invN
		grow := gd[i*c : (i+1)*c]
		for j, v := range row {
			p := math.Exp(v-maxV) / sum
			grow[j] = p * invN
		}
		grow[y] -= invN
	}
	return loss
}

// SoftmaxCrossEntropyEvalInto is the fused evaluation kernel: one pass
// over logits [N, C] writes each row's cross-entropy loss into
// perSample (caller-owned, length N — *not* divided by N, so callers
// can reduce across batches with any fixed chunking) and returns how
// many rows' argmax matches labels. It computes no gradients and
// allocates nothing, which is what makes a steady-state evaluation
// step heap-free; argmax tie-breaking matches Predict (lowest class
// index wins).
func SoftmaxCrossEntropyEvalInto(perSample []float64, logits *tensor.Tensor, labels []int) (correct int) {
	if logits.Dims() != 2 {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropyEvalInto logits %v, want 2-D", logits.Shape()))
	}
	n, c := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropyEvalInto: %d rows vs %d labels", n, len(labels)))
	}
	if len(perSample) != n {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropyEvalInto: perSample length %d, want %d", len(perSample), n))
	}
	ld := logits.Data()
	for i := 0; i < n; i++ {
		row := ld[i*c : (i+1)*c]
		y := labels[i]
		if y < 0 || y >= c {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, c))
		}
		// One sweep finds the max and its argmax; the stable
		// log-sum-exp then reuses the max.
		maxV, arg := row[0], 0
		for j, v := range row[1:] {
			if v > maxV {
				maxV, arg = v, j+1
			}
		}
		sum := 0.0
		for _, v := range row {
			sum += math.Exp(v - maxV)
		}
		perSample[i] = maxV + math.Log(sum) - row[y]
		if arg == y {
			correct++
		}
	}
	return correct
}

// Softmax returns row-wise softmax probabilities for logits [N, C].
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	n, c := logits.Dim(0), logits.Dim(1)
	out := tensor.New(n, c)
	ld, od := logits.Data(), out.Data()
	for i := 0; i < n; i++ {
		row := ld[i*c : (i+1)*c]
		orow := od[i*c : (i+1)*c]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - maxV)
			orow[j] = e
			sum += e
		}
		inv := 1.0 / sum
		for j := range orow {
			orow[j] *= inv
		}
	}
	return out
}
