package nn

import (
	"fmt"
	"math"

	"hadfl/internal/tensor"
)

// SoftmaxCrossEntropy computes the mean cross-entropy loss over a batch of
// logits [N, C] against integer labels, and the gradient ∂L/∂logits
// (already divided by N, matching Eq. 1's 1/B factor).
func SoftmaxCrossEntropy(logits *tensor.Tensor, labels []int) (loss float64, grad *tensor.Tensor) {
	grad = tensor.New(logits.Dim(0), logits.Dim(1))
	loss = SoftmaxCrossEntropyInto(grad, logits, labels)
	return loss, grad
}

// SoftmaxCrossEntropyInto is SoftmaxCrossEntropy writing ∂L/∂logits
// into a caller-owned buffer of the logits' shape, the zero-allocation
// path used by the training loops.
func SoftmaxCrossEntropyInto(grad, logits *tensor.Tensor, labels []int) (loss float64) {
	if logits.Dims() != 2 {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy logits %v, want 2-D", logits.Shape()))
	}
	n, c := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropy: %d rows vs %d labels", n, len(labels)))
	}
	if !grad.SameShape(logits) {
		panic(fmt.Sprintf("nn: SoftmaxCrossEntropyInto grad %v, logits %v", grad.Shape(), logits.Shape()))
	}
	ld, gd := logits.Data(), grad.Data()
	invN := 1.0 / float64(n)
	for i := 0; i < n; i++ {
		row := ld[i*c : (i+1)*c]
		y := labels[i]
		if y < 0 || y >= c {
			panic(fmt.Sprintf("nn: label %d out of range [0,%d)", y, c))
		}
		// Numerically stable log-sum-exp.
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		for _, v := range row {
			sum += math.Exp(v - maxV)
		}
		logSum := maxV + math.Log(sum)
		loss += (logSum - row[y]) * invN
		grow := gd[i*c : (i+1)*c]
		for j, v := range row {
			p := math.Exp(v-maxV) / sum
			grow[j] = p * invN
		}
		grow[y] -= invN
	}
	return loss
}

// Softmax returns row-wise softmax probabilities for logits [N, C].
func Softmax(logits *tensor.Tensor) *tensor.Tensor {
	n, c := logits.Dim(0), logits.Dim(1)
	out := tensor.New(n, c)
	ld, od := logits.Data(), out.Data()
	for i := 0; i < n; i++ {
		row := ld[i*c : (i+1)*c]
		orow := od[i*c : (i+1)*c]
		maxV := row[0]
		for _, v := range row[1:] {
			if v > maxV {
				maxV = v
			}
		}
		sum := 0.0
		for j, v := range row {
			e := math.Exp(v - maxV)
			orow[j] = e
			sum += e
		}
		inv := 1.0 / sum
		for j := range orow {
			orow[j] *= inv
		}
	}
	return out
}
