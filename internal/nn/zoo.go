package nn

import (
	"fmt"
	"math/rand"
)

// Arch constructs a fresh, randomly initialized model. Every device in a
// federation builds the same Arch and then loads the coordinator's initial
// parameter vector, so architectures must be deterministic given the rng.
type Arch func(rng *rand.Rand) *Model

// NewMLP builds a plain multi-layer perceptron: in → hidden... → classes
// with ReLU activations. It is the fast model used by unit tests and
// quick experiments.
func NewMLP(rng *rand.Rand, in int, hidden []int, classes int) *Model {
	var layers []Layer
	prev := in
	for _, h := range hidden {
		layers = append(layers, NewDense(rng, prev, h), NewReLU())
		prev = h
	}
	layers = append(layers, NewDense(rng, prev, classes))
	return NewModel(fmt.Sprintf("mlp-%d", len(hidden)), layers...)
}

// NewVGGTiny builds a small plain (non-residual) convolutional network in
// the spirit of VGG-16: stacked 3×3 conv + BN + ReLU blocks with pooling,
// then a dense classifier. Input is [N, inCh, size, size]; size must be
// divisible by 4.
func NewVGGTiny(rng *rand.Rand, inCh, size, classes int) *Model {
	if size%4 != 0 {
		panic(fmt.Sprintf("nn: VGGTiny size %d must be divisible by 4", size))
	}
	c1, c2 := 8, 16
	layers := []Layer{
		NewConv2D(rng, inCh, c1, 3, 1, 1), NewBatchNorm(c1), NewReLU(),
		NewConv2D(rng, c1, c1, 3, 1, 1), NewBatchNorm(c1), NewReLU(),
		NewMaxPool(2, 2),
		NewConv2D(rng, c1, c2, 3, 1, 1), NewBatchNorm(c2), NewReLU(),
		NewConv2D(rng, c2, c2, 3, 1, 1), NewBatchNorm(c2), NewReLU(),
		NewMaxPool(2, 2),
		NewFlatten(),
		NewDense(rng, c2*(size/4)*(size/4), 64), NewReLU(),
		NewDense(rng, 64, classes),
	}
	return NewModel("vgg-tiny", layers...)
}

// NewResNetTiny builds a small residual convolutional network in the
// spirit of ResNet-18: a conv stem followed by residual blocks and a
// global-average-pooled linear head. Input is [N, inCh, size, size].
func NewResNetTiny(rng *rand.Rand, inCh, size, classes int) *Model {
	c1, c2 := 8, 16
	stem := []Layer{
		NewConv2D(rng, inCh, c1, 3, 1, 1), NewBatchNorm(c1), NewReLU(),
	}
	block1 := NewResidual(
		[]Layer{
			NewConv2D(rng, c1, c1, 3, 1, 1), NewBatchNorm(c1), NewReLU(),
			NewConv2D(rng, c1, c1, 3, 1, 1), NewBatchNorm(c1),
		},
		nil, // identity shortcut
	)
	// Downsampling block: stride-2 body with a 1×1 stride-2 projection.
	block2 := NewResidual(
		[]Layer{
			NewConv2D(rng, c1, c2, 3, 2, 1), NewBatchNorm(c2), NewReLU(),
			NewConv2D(rng, c2, c2, 3, 1, 1), NewBatchNorm(c2),
		},
		[]Layer{NewConv2D(rng, c1, c2, 1, 2, 0), NewBatchNorm(c2)},
	)
	block3 := NewResidual(
		[]Layer{
			NewConv2D(rng, c2, c2, 3, 1, 1), NewBatchNorm(c2), NewReLU(),
			NewConv2D(rng, c2, c2, 3, 1, 1), NewBatchNorm(c2),
		},
		nil,
	)
	layers := append(stem, block1, block2, block3, NewGlobalAvgPool(), NewDense(rng, c2, classes))
	_ = size
	return NewModel("resnet-tiny", layers...)
}

// NewResMLP builds a residual MLP: dense stem, residual dense blocks,
// classifier. It keeps the residual-vs-plain architectural contrast of
// ResNetTiny/VGGTiny while training an order of magnitude faster, and is
// the default "resnet-like" model for the fast experiment profiles.
func NewResMLP(rng *rand.Rand, in, width, blocks, classes int) *Model {
	layers := []Layer{NewDense(rng, in, width), NewReLU()}
	for i := 0; i < blocks; i++ {
		layers = append(layers, NewResidual(
			[]Layer{NewDense(rng, width, width), NewReLU(), NewDense(rng, width, width)},
			nil,
		))
	}
	layers = append(layers, NewDense(rng, width, classes))
	return NewModel(fmt.Sprintf("resmlp-%d", blocks), layers...)
}

// NewPlainMLP builds the non-residual counterpart of NewResMLP with the
// same depth and width, used as the fast "vgg-like" model.
func NewPlainMLP(rng *rand.Rand, in, width, blocks, classes int) *Model {
	layers := []Layer{NewDense(rng, in, width), NewReLU()}
	for i := 0; i < blocks; i++ {
		layers = append(layers, NewDense(rng, width, width), NewReLU(), NewDense(rng, width, width), NewReLU())
	}
	layers = append(layers, NewDense(rng, width, classes))
	return NewModel(fmt.Sprintf("plainmlp-%d", blocks), layers...)
}
