package nn

import (
	"math"
	"math/rand"
	"testing"

	"hadfl/internal/tensor"
)

func TestDropoutInferencePassthrough(t *testing.T) {
	d := NewDropout(rand.New(rand.NewSource(1)), 0.5)
	x := tensor.FromSlice([]float64{1, 2, 3, 4}, 4)
	y := d.Forward(x, false)
	if !y.Equal(x, 0) {
		t.Fatal("inference must be identity")
	}
}

func TestDropoutZeroRate(t *testing.T) {
	d := NewDropout(rand.New(rand.NewSource(1)), 0)
	x := tensor.FromSlice([]float64{1, 2}, 2)
	if !d.Forward(x, true).Equal(x, 0) {
		t.Fatal("p=0 must be identity")
	}
	g := tensor.FromSlice([]float64{5, 6}, 2)
	if !d.Backward(g).Equal(g, 0) {
		t.Fatal("p=0 backward must be identity")
	}
}

func TestDropoutMaskAndScale(t *testing.T) {
	d := NewDropout(rand.New(rand.NewSource(2)), 0.5)
	x := tensor.New(10000)
	x.Fill(1)
	y := d.Forward(x, true)
	zeros, scaled := 0, 0
	for _, v := range y.Data() {
		switch {
		case v == 0:
			zeros++
		case math.Abs(v-2) < 1e-12: // survivors scaled by 1/(1-0.5)
			scaled++
		default:
			t.Fatalf("unexpected value %v", v)
		}
	}
	if zeros < 4500 || zeros > 5500 {
		t.Fatalf("dropped %d of 10000 at p=0.5", zeros)
	}
	// Expectation preserved: mean ≈ 1.
	if mean := y.Mean(); math.Abs(mean-1) > 0.05 {
		t.Fatalf("mean %v, want ≈1", mean)
	}
}

func TestDropoutBackwardRoutesThroughMask(t *testing.T) {
	d := NewDropout(rand.New(rand.NewSource(3)), 0.5)
	x := tensor.New(100)
	x.Fill(1)
	y := d.Forward(x, true)
	g := tensor.New(100)
	g.Fill(1)
	back := d.Backward(g)
	for i := range back.Data() {
		if y.Data()[i] == 0 && back.Data()[i] != 0 {
			t.Fatal("gradient leaked through a dropped unit")
		}
		if y.Data()[i] != 0 && math.Abs(back.Data()[i]-2) > 1e-12 {
			t.Fatal("surviving gradient not scaled")
		}
	}
}

func TestDropoutValidation(t *testing.T) {
	for _, p := range []float64{-0.1, 1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("p=%v did not panic", p)
				}
			}()
			NewDropout(nil, p)
		}()
	}
}

func TestDropoutInsideModelTrains(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewModel("dropout-mlp",
		NewDense(rng, 8, 32), NewReLU(),
		NewDropout(rand.New(rand.NewSource(5)), 0.2),
		NewDense(rng, 32, 3),
	)
	opt := NewSGD(0.1, 0.9, 0)
	x := tensor.RandNormal(rng, 0, 1, 24, 8)
	labels := make([]int, 24)
	for i := range labels {
		labels[i] = i % 3
	}
	first, _ := SoftmaxCrossEntropy(m.Forward(x, true), labels)
	var last float64
	for i := 0; i < 120; i++ {
		m.ZeroGrads()
		logits := m.Forward(x, true)
		l, g := SoftmaxCrossEntropy(logits, labels)
		m.Backward(g)
		opt.Step(m)
		last = l
	}
	if last >= first {
		t.Fatalf("dropout model did not learn: %v → %v", first, last)
	}
}
