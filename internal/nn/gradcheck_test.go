package nn

import (
	"math"
	"math/rand"
	"testing"

	"hadfl/internal/tensor"
)

// numericalGradAt estimates ∂loss/∂θᵢ for the given parameter indices via
// central differences, with loss = SoftmaxCrossEntropy(model(x), labels).
// Checking a sample keeps deep-model checks fast while still covering
// every layer type (indices are spread across the whole vector).
func numericalGradAt(m *Model, x *tensor.Tensor, labels []int, eps float64, idx []int) map[int]float64 {
	flat := m.Parameters()
	grad := make(map[int]float64, len(idx))
	for _, i := range idx {
		orig := flat[i]
		flat[i] = orig + eps
		m.SetParameters(flat)
		lp, _ := SoftmaxCrossEntropy(m.Forward(x, true), labels)
		flat[i] = orig - eps
		m.SetParameters(flat)
		lm, _ := SoftmaxCrossEntropy(m.Forward(x, true), labels)
		flat[i] = orig
		grad[i] = (lp - lm) / (2 * eps)
	}
	m.SetParameters(flat)
	return grad
}

// analyticGrad runs one forward/backward pass and returns the flattened
// parameter gradient.
func analyticGrad(m *Model, x *tensor.Tensor, labels []int) []float64 {
	m.ZeroGrads()
	logits := m.Forward(x, true)
	_, g := SoftmaxCrossEntropy(logits, labels)
	m.Backward(g)
	return m.GradientVector()
}

// checkGradients compares analytic and numerical gradients on up to 300
// parameter indices spread evenly across the vector, so every layer type
// in the stack is exercised. Batch-norm running statistics have zero
// analytic gradients by design, and their numerical gradient is also ~0
// in train mode because the loss uses batch (not running) statistics, so
// no exemptions are needed.
func checkGradients(t *testing.T, m *Model, x *tensor.Tensor, labels []int) {
	t.Helper()
	ana := analyticGrad(m, x, labels)
	n := len(ana)
	const maxChecks = 300
	var idx []int
	if n <= maxChecks {
		for i := 0; i < n; i++ {
			idx = append(idx, i)
		}
	} else {
		stride := n / maxChecks
		for i := 0; i < n; i += stride {
			idx = append(idx, i)
		}
	}
	num := numericalGradAt(m, x, labels, 1e-5, idx)
	worst, worstIdx := 0.0, -1
	for _, i := range idx {
		denom := math.Max(1e-4, math.Abs(ana[i])+math.Abs(num[i]))
		rel := math.Abs(ana[i]-num[i]) / denom
		if rel > worst {
			worst, worstIdx = rel, i
		}
	}
	if worst > 2e-4 {
		t.Fatalf("gradient check failed: worst relative error %.3g at param %d (analytic %.6g numerical %.6g)",
			worst, worstIdx, ana[worstIdx], num[worstIdx])
	}
}

func TestGradCheckDense(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewModel("dense", NewDense(rng, 5, 4))
	x := tensor.RandNormal(rng, 0, 1, 3, 5)
	checkGradients(t, m, x, []int{0, 2, 3})
}

func TestGradCheckMLP(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := NewMLP(rng, 6, []int{8, 8}, 4)
	x := tensor.RandNormal(rng, 0, 1, 4, 6)
	checkGradients(t, m, x, []int{0, 1, 2, 3})
}

func TestGradCheckConv2D(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := NewModel("conv",
		NewConv2D(rng, 2, 3, 3, 1, 1),
		NewReLU(),
		NewMaxPool(2, 2),
		NewFlatten(),
		NewDense(rng, 3*3*3, 4),
	)
	x := tensor.RandNormal(rng, 0, 1, 2, 2, 6, 6)
	checkGradients(t, m, x, []int{1, 3})
}

func TestGradCheckConvStride2(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := NewModel("conv-s2",
		NewConv2D(rng, 1, 2, 3, 2, 1),
		NewFlatten(),
		NewDense(rng, 2*3*3, 3),
	)
	x := tensor.RandNormal(rng, 0, 1, 2, 1, 6, 6)
	checkGradients(t, m, x, []int{0, 2})
}

func TestGradCheckBatchNorm2D(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := NewModel("bn2d",
		NewDense(rng, 4, 6),
		NewBatchNorm(6),
		NewReLU(),
		NewDense(rng, 6, 3),
	)
	x := tensor.RandNormal(rng, 0, 1, 5, 4)
	checkGradients(t, m, x, []int{0, 1, 2, 0, 1})
}

func TestGradCheckBatchNorm4D(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := NewModel("bn4d",
		NewConv2D(rng, 1, 2, 3, 1, 1),
		NewBatchNorm(2),
		NewReLU(),
		NewGlobalAvgPool(),
		NewDense(rng, 2, 3),
	)
	x := tensor.RandNormal(rng, 0, 1, 3, 1, 5, 5)
	checkGradients(t, m, x, []int{0, 1, 2})
}

func TestGradCheckResidualIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := NewModel("res-id",
		NewDense(rng, 4, 6),
		NewResidual([]Layer{NewDense(rng, 6, 6), NewReLU(), NewDense(rng, 6, 6)}, nil),
		NewDense(rng, 6, 3),
	)
	x := tensor.RandNormal(rng, 0, 1, 4, 4)
	checkGradients(t, m, x, []int{0, 1, 2, 1})
}

func TestGradCheckResidualProjection(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := NewModel("res-proj",
		NewConv2D(rng, 1, 2, 3, 1, 1),
		NewResidual(
			[]Layer{NewConv2D(rng, 2, 4, 3, 2, 1), NewReLU(), NewConv2D(rng, 4, 4, 3, 1, 1)},
			[]Layer{NewConv2D(rng, 2, 4, 1, 2, 0)},
		),
		NewGlobalAvgPool(),
		NewDense(rng, 4, 3),
	)
	x := tensor.RandNormal(rng, 0, 1, 2, 1, 6, 6)
	checkGradients(t, m, x, []int{0, 2})
}

func TestGradCheckResNetTiny(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := NewResNetTiny(rng, 1, 8, 3)
	x := tensor.RandNormal(rng, 0, 1, 2, 1, 8, 8)
	checkGradients(t, m, x, []int{0, 2})
}

func TestGradCheckVGGTiny(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	m := NewVGGTiny(rng, 1, 8, 3)
	x := tensor.RandNormal(rng, 0, 1, 2, 1, 8, 8)
	checkGradients(t, m, x, []int{1, 2})
}
