package nn

import (
	"fmt"
	"math"

	"hadfl/internal/tensor"
)

// BatchNorm normalizes activations per feature (2-D input [N, F]) or per
// channel (4-D input [N, C, H, W]), then applies a learned affine
// transform y = γ·x̂ + β. Running statistics are tracked for inference.
//
// The running mean/variance are treated as (non-learned) state that still
// travels with the model parameters during federated aggregation, matching
// how FL systems ship batch-norm buffers.
//
// The 2-D and 4-D cases run specialized index loops (no per-element
// closure) and write into persistent buffers, keeping training steps
// allocation-free.
type BatchNorm struct {
	Gamma, Beta   *tensor.Tensor
	dGamma, dBeta *tensor.Tensor
	RunMean       *tensor.Tensor
	RunVar        *tensor.Tensor
	Momentum      float64
	Eps           float64

	features int
	// Permanent zero gradients for the running statistics, so the
	// optimizer never moves them.
	zeroMean, zeroVar *tensor.Tensor
	// Backward caches.
	xhat   *tensor.Tensor
	invStd []float64
	cached bool
	// Persistent output buffers (forward / backward).
	out, dx *tensor.Tensor
}

// NewBatchNorm returns a batch-norm layer over the given feature/channel
// count.
func NewBatchNorm(features int) *BatchNorm {
	g := tensor.New(features)
	g.Fill(1)
	rv := tensor.New(features)
	rv.Fill(1)
	return &BatchNorm{
		Gamma:    g,
		Beta:     tensor.New(features),
		dGamma:   tensor.New(features),
		dBeta:    tensor.New(features),
		RunMean:  tensor.New(features),
		RunVar:   rv,
		Momentum: 0.9,
		Eps:      1e-5,
		features: features,
		zeroMean: tensor.New(features),
		zeroVar:  tensor.New(features),
	}
}

// dims validates x and returns the per-feature group size m and the
// (plane, chanStride) index geometry: sample i of feature f lives at
// base(f) + block(i) where the 2-D case degenerates to plane=1.
func (b *BatchNorm) dims(x *tensor.Tensor) (m, plane int) {
	switch x.Dims() {
	case 2:
		if x.Dim(1) != b.features {
			panic(fmt.Sprintf("nn: BatchNorm features %d, input %v", b.features, x.Shape()))
		}
		return x.Dim(0), 1
	case 4:
		if x.Dim(1) != b.features {
			panic(fmt.Sprintf("nn: BatchNorm channels %d, input %v", b.features, x.Shape()))
		}
		return x.Dim(0) * x.Dim(2) * x.Dim(3), x.Dim(2) * x.Dim(3)
	default:
		panic(fmt.Sprintf("nn: BatchNorm input must be 2-D or 4-D, got %v", x.Shape()))
	}
}

// forEach iterates the m samples of feature f in ascending order,
// yielding their flat indices. Implemented as explicit loops at both
// call shapes below — kept here as documentation of the layout:
// 2-D [N,F]: idx = i*F + f; 4-D [N,C,H,W]: idx = (ni*C+f)*plane + p.

// Forward implements Layer.
func (b *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	m, plane := b.dims(x)
	b.out = tensor.Ensure(b.out, x.Shape()...)
	xd, od := x.Data(), b.out.Data()
	if train {
		b.xhat = tensor.Ensure(b.xhat, x.Shape()...)
		if cap(b.invStd) < b.features {
			b.invStd = make([]float64, b.features)
		}
		b.invStd = b.invStd[:b.features]
		b.cached = true
	}
	f := b.features
	nchw := x.Dims() == 4
	groups := 1
	if nchw {
		groups = x.Dim(0)
	}
	gd, bd := b.Gamma.Data(), b.Beta.Data()
	for fi := 0; fi < f; fi++ {
		// stride/base geometry: 2-D walks column fi with stride f;
		// 4-D walks each image's channel plane contiguously.
		var mean, variance float64
		if train {
			s := 0.0
			if nchw {
				for ni := 0; ni < groups; ni++ {
					base := (ni*f + fi) * plane
					for p := 0; p < plane; p++ {
						s += xd[base+p]
					}
				}
			} else {
				for i := 0; i < m; i++ {
					s += xd[i*f+fi]
				}
			}
			mean = s / float64(m)
			v := 0.0
			if nchw {
				for ni := 0; ni < groups; ni++ {
					base := (ni*f + fi) * plane
					for p := 0; p < plane; p++ {
						d := xd[base+p] - mean
						v += d * d
					}
				}
			} else {
				for i := 0; i < m; i++ {
					d := xd[i*f+fi] - mean
					v += d * d
				}
			}
			variance = v / float64(m)
			b.RunMean.Data()[fi] = b.Momentum*b.RunMean.Data()[fi] + (1-b.Momentum)*mean
			b.RunVar.Data()[fi] = b.Momentum*b.RunVar.Data()[fi] + (1-b.Momentum)*variance
		} else {
			mean = b.RunMean.Data()[fi]
			variance = b.RunVar.Data()[fi]
		}
		inv := 1.0 / math.Sqrt(variance+b.Eps)
		g, beta := gd[fi], bd[fi]
		if train {
			b.invStd[fi] = inv
			xh := b.xhat.Data()
			if nchw {
				for ni := 0; ni < groups; ni++ {
					base := (ni*f + fi) * plane
					for p := 0; p < plane; p++ {
						idx := base + p
						h := (xd[idx] - mean) * inv
						xh[idx] = h
						od[idx] = g*h + beta
					}
				}
			} else {
				for i := 0; i < m; i++ {
					idx := i*f + fi
					h := (xd[idx] - mean) * inv
					xh[idx] = h
					od[idx] = g*h + beta
				}
			}
		} else {
			if nchw {
				for ni := 0; ni < groups; ni++ {
					base := (ni*f + fi) * plane
					for p := 0; p < plane; p++ {
						idx := base + p
						od[idx] = g*(xd[idx]-mean)*inv + beta
					}
				}
			} else {
				for i := 0; i < m; i++ {
					idx := i*f + fi
					od[idx] = g*(xd[idx]-mean)*inv + beta
				}
			}
		}
	}
	return b.out
}

// Backward implements Layer.
func (b *BatchNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if !b.cached {
		panic("nn: BatchNorm.Backward before Forward(train=true)")
	}
	m, plane := b.dims(grad)
	b.dx = tensor.Ensure(b.dx, grad.Shape()...)
	gd, od, xh := grad.Data(), b.dx.Data(), b.xhat.Data()
	fm := float64(m)
	f := b.features
	nchw := grad.Dims() == 4
	groups := 1
	if nchw {
		groups = grad.Dim(0)
	}
	for fi := 0; fi < f; fi++ {
		g := b.Gamma.Data()[fi]
		inv := b.invStd[fi]
		var sumDy, sumDyXhat float64
		if nchw {
			for ni := 0; ni < groups; ni++ {
				base := (ni*f + fi) * plane
				for p := 0; p < plane; p++ {
					idx := base + p
					sumDy += gd[idx]
					sumDyXhat += gd[idx] * xh[idx]
				}
			}
		} else {
			for i := 0; i < m; i++ {
				idx := i*f + fi
				sumDy += gd[idx]
				sumDyXhat += gd[idx] * xh[idx]
			}
		}
		b.dBeta.Data()[fi] += sumDy
		b.dGamma.Data()[fi] += sumDyXhat
		// dx = γ·inv/m · (m·dy − Σdy − x̂·Σ(dy·x̂))
		c := g * inv / fm
		if nchw {
			for ni := 0; ni < groups; ni++ {
				base := (ni*f + fi) * plane
				for p := 0; p < plane; p++ {
					idx := base + p
					od[idx] = c * (fm*gd[idx] - sumDy - xh[idx]*sumDyXhat)
				}
			}
		} else {
			for i := 0; i < m; i++ {
				idx := i*f + fi
				od[idx] = c * (fm*gd[idx] - sumDy - xh[idx]*sumDyXhat)
			}
		}
	}
	return b.dx
}

// Params implements Layer. Running statistics are included so that model
// aggregation also averages them (standard FL practice for BN buffers).
func (b *BatchNorm) Params() []*tensor.Tensor {
	return []*tensor.Tensor{b.Gamma, b.Beta, b.RunMean, b.RunVar}
}

// Grads implements Layer. Running statistics receive zero gradients; the
// optimizer skips them via the matching zero-length update.
func (b *BatchNorm) Grads() []*tensor.Tensor {
	// RunMean/RunVar are not learned: their "gradients" are permanently
	// zero tensors so the optimizer leaves them untouched.
	return []*tensor.Tensor{b.dGamma, b.dBeta, b.zeroMean, b.zeroVar}
}
