package nn

import (
	"fmt"
	"math"

	"hadfl/internal/tensor"
)

// BatchNorm normalizes activations per feature (2-D input [N, F]) or per
// channel (4-D input [N, C, H, W]), then applies a learned affine
// transform y = γ·x̂ + β. Running statistics are tracked for inference.
//
// The running mean/variance are treated as (non-learned) state that still
// travels with the model parameters during federated aggregation, matching
// how FL systems ship batch-norm buffers.
type BatchNorm struct {
	Gamma, Beta   *tensor.Tensor
	dGamma, dBeta *tensor.Tensor
	RunMean       *tensor.Tensor
	RunVar        *tensor.Tensor
	Momentum      float64
	Eps           float64

	features int
	// Permanent zero gradients for the running statistics, so the
	// optimizer never moves them.
	zeroMean, zeroVar *tensor.Tensor
	// Backward caches.
	xhat   *tensor.Tensor
	invStd []float64
	cached bool
	nchw   bool
	shape  []int
}

// NewBatchNorm returns a batch-norm layer over the given feature/channel
// count.
func NewBatchNorm(features int) *BatchNorm {
	g := tensor.New(features)
	g.Fill(1)
	rv := tensor.New(features)
	rv.Fill(1)
	return &BatchNorm{
		Gamma:    g,
		Beta:     tensor.New(features),
		dGamma:   tensor.New(features),
		dBeta:    tensor.New(features),
		RunMean:  tensor.New(features),
		RunVar:   rv,
		Momentum: 0.9,
		Eps:      1e-5,
		features: features,
		zeroMean: tensor.New(features),
		zeroVar:  tensor.New(features),
	}
}

// view decomposes x into (groups m, features f) index math shared by 2-D
// and 4-D inputs: for [N,F] each feature column has m=N samples; for
// [N,C,H,W] each channel has m=N·H·W samples.
func (b *BatchNorm) view(x *tensor.Tensor) (m int, get func(f, i int) int) {
	switch x.Dims() {
	case 2:
		n, f := x.Dim(0), x.Dim(1)
		if f != b.features {
			panic(fmt.Sprintf("nn: BatchNorm features %d, input %v", b.features, x.Shape()))
		}
		return n, func(fi, i int) int { return i*f + fi }
	case 4:
		n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
		if c != b.features {
			panic(fmt.Sprintf("nn: BatchNorm channels %d, input %v", b.features, x.Shape()))
		}
		plane := h * w
		return n * plane, func(fi, i int) int {
			ni, p := i/plane, i%plane
			return (ni*c+fi)*plane + p
		}
	default:
		panic(fmt.Sprintf("nn: BatchNorm input must be 2-D or 4-D, got %v", x.Shape()))
	}
}

// Forward implements Layer.
func (b *BatchNorm) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	m, at := b.view(x)
	out := x.Clone()
	xd, od := x.Data(), out.Data()
	if train {
		b.xhat = tensor.New(x.Shape()...)
		if cap(b.invStd) < b.features {
			b.invStd = make([]float64, b.features)
		}
		b.invStd = b.invStd[:b.features]
		b.shape = append(b.shape[:0], x.Shape()...)
		b.nchw = x.Dims() == 4
		b.cached = true
	}
	for f := 0; f < b.features; f++ {
		var mean, variance float64
		if train {
			s := 0.0
			for i := 0; i < m; i++ {
				s += xd[at(f, i)]
			}
			mean = s / float64(m)
			v := 0.0
			for i := 0; i < m; i++ {
				d := xd[at(f, i)] - mean
				v += d * d
			}
			variance = v / float64(m)
			b.RunMean.Data()[f] = b.Momentum*b.RunMean.Data()[f] + (1-b.Momentum)*mean
			b.RunVar.Data()[f] = b.Momentum*b.RunVar.Data()[f] + (1-b.Momentum)*variance
		} else {
			mean = b.RunMean.Data()[f]
			variance = b.RunVar.Data()[f]
		}
		inv := 1.0 / math.Sqrt(variance+b.Eps)
		g, beta := b.Gamma.Data()[f], b.Beta.Data()[f]
		if train {
			b.invStd[f] = inv
			for i := 0; i < m; i++ {
				idx := at(f, i)
				xh := (xd[idx] - mean) * inv
				b.xhat.Data()[idx] = xh
				od[idx] = g*xh + beta
			}
		} else {
			for i := 0; i < m; i++ {
				idx := at(f, i)
				od[idx] = g*(xd[idx]-mean)*inv + beta
			}
		}
	}
	return out
}

// Backward implements Layer.
func (b *BatchNorm) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if !b.cached {
		panic("nn: BatchNorm.Backward before Forward(train=true)")
	}
	m, at := b.view(grad)
	out := tensor.New(grad.Shape()...)
	gd, od, xh := grad.Data(), out.Data(), b.xhat.Data()
	fm := float64(m)
	for f := 0; f < b.features; f++ {
		g := b.Gamma.Data()[f]
		inv := b.invStd[f]
		var sumDy, sumDyXhat float64
		for i := 0; i < m; i++ {
			idx := at(f, i)
			sumDy += gd[idx]
			sumDyXhat += gd[idx] * xh[idx]
		}
		b.dBeta.Data()[f] += sumDy
		b.dGamma.Data()[f] += sumDyXhat
		// dx = γ·inv/m · (m·dy − Σdy − x̂·Σ(dy·x̂))
		c := g * inv / fm
		for i := 0; i < m; i++ {
			idx := at(f, i)
			od[idx] = c * (fm*gd[idx] - sumDy - xh[idx]*sumDyXhat)
		}
	}
	return out
}

// Params implements Layer. Running statistics are included so that model
// aggregation also averages them (standard FL practice for BN buffers).
func (b *BatchNorm) Params() []*tensor.Tensor {
	return []*tensor.Tensor{b.Gamma, b.Beta, b.RunMean, b.RunVar}
}

// Grads implements Layer. Running statistics receive zero gradients; the
// optimizer skips them via the matching zero-length update.
func (b *BatchNorm) Grads() []*tensor.Tensor {
	// RunMean/RunVar are not learned: their "gradients" are permanently
	// zero tensors so the optimizer leaves them untouched.
	return []*tensor.Tensor{b.dGamma, b.dBeta, b.zeroMean, b.zeroVar}
}
