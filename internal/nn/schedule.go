package nn

import (
	"fmt"
	"math"
)

// LRSchedule maps a global step index to a learning rate. Schedules are
// pure functions so every device can evaluate them locally without
// coordination — important in the asynchronous setting where devices
// sit at different step counts.
type LRSchedule interface {
	// LR returns the learning rate for step t (t ≥ 0).
	LR(t int) float64
}

// ConstantLR always returns the same rate.
type ConstantLR float64

// LR implements LRSchedule.
func (c ConstantLR) LR(int) float64 { return float64(c) }

// StepDecay multiplies the base rate by Gamma every Every steps — the
// classic ResNet schedule shape.
type StepDecay struct {
	Base  float64
	Gamma float64 // decay factor per stage, e.g. 0.1
	Every int     // steps per stage
}

// LR implements LRSchedule.
func (s StepDecay) LR(t int) float64 {
	if s.Every <= 0 {
		panic(fmt.Sprintf("nn: StepDecay.Every = %d", s.Every))
	}
	return s.Base * math.Pow(s.Gamma, float64(t/s.Every))
}

// WarmupLinear ramps linearly from Base·Scale to Base over WarmupSteps,
// then stays at Base — the "small learning rate during
// mutual-negotiation" policy of the paper's §III-B generalized to a
// smooth ramp.
type WarmupLinear struct {
	Base        float64
	Scale       float64 // starting fraction of Base, e.g. 0.1
	WarmupSteps int
}

// LR implements LRSchedule.
func (w WarmupLinear) LR(t int) float64 {
	if w.WarmupSteps <= 0 || t >= w.WarmupSteps {
		return w.Base
	}
	frac := float64(t) / float64(w.WarmupSteps)
	start := w.Base * w.Scale
	return start + (w.Base-start)*frac
}

// CosineAnnealing decays from Base to Floor along a half cosine over
// TotalSteps, then stays at Floor.
type CosineAnnealing struct {
	Base       float64
	Floor      float64
	TotalSteps int
}

// LR implements LRSchedule.
func (c CosineAnnealing) LR(t int) float64 {
	if c.TotalSteps <= 0 {
		panic(fmt.Sprintf("nn: CosineAnnealing.TotalSteps = %d", c.TotalSteps))
	}
	if t >= c.TotalSteps {
		return c.Floor
	}
	cos := math.Cos(math.Pi * float64(t) / float64(c.TotalSteps))
	return c.Floor + (c.Base-c.Floor)*(1+cos)/2
}

// Chain runs Head for HeadSteps steps, then delegates to Tail with the
// step index rebased to zero — e.g. warm-up followed by cosine.
type Chain struct {
	Head      LRSchedule
	HeadSteps int
	Tail      LRSchedule
}

// LR implements LRSchedule.
func (ch Chain) LR(t int) float64 {
	if t < ch.HeadSteps {
		return ch.Head.LR(t)
	}
	return ch.Tail.LR(t - ch.HeadSteps)
}

// ApplySchedule sets the optimizer's learning rate for step t.
func ApplySchedule(opt *SGD, s LRSchedule, t int) {
	opt.LR = s.LR(t)
}
