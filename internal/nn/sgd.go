package nn

import "hadfl/internal/tensor"

// SGD is a stochastic-gradient-descent optimizer with classical momentum
// and (optionally) weight decay applied only to tensors of rank ≥ 2 —
// i.e. weight matrices and convolution kernels, never biases or
// batch-norm parameters, following standard practice.
type SGD struct {
	LR          float64
	Momentum    float64
	WeightDecay float64

	velocity []*tensor.Tensor
}

// NewSGD constructs an optimizer. momentum=0 disables momentum.
func NewSGD(lr, momentum, weightDecay float64) *SGD {
	return &SGD{LR: lr, Momentum: momentum, WeightDecay: weightDecay}
}

// Step applies one update to the model's parameters from its accumulated
// gradients, then zeroes the gradients.
func (s *SGD) Step(m *Model) {
	params := m.ParamTensors()
	grads := m.GradTensors()
	if s.velocity == nil {
		s.velocity = make([]*tensor.Tensor, len(params))
		for i, p := range params {
			s.velocity[i] = tensor.New(p.Shape()...)
		}
	}
	for i, p := range params {
		g := grads[i]
		v := s.velocity[i]
		decay := 0.0
		if s.WeightDecay > 0 && p.Dims() >= 2 {
			decay = s.WeightDecay
		}
		pd, gd, vd := p.Data(), g.Data(), v.Data()
		for j := range pd {
			eff := gd[j] + decay*pd[j]
			vd[j] = s.Momentum*vd[j] + eff
			pd[j] -= s.LR * vd[j]
		}
	}
	m.ZeroGrads()
}

// Reset clears momentum state, e.g. after parameters are replaced by a
// freshly aggregated global model. The velocity buffers are zeroed in
// place, not dropped: SetParameters resets the optimizer every sync
// round, and reallocating the full parameter-sized storage each time
// dominated steady-state allocations.
func (s *SGD) Reset() {
	for _, v := range s.velocity {
		tensor.VecFill(v.Data(), 0)
	}
}
