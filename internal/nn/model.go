package nn

import (
	"fmt"

	"hadfl/internal/tensor"
)

// Model is a sequential stack of layers plus the flat-parameter plumbing
// federated aggregation needs: Parameters() serializes every learnable
// tensor (and batch-norm buffer) into one []float64, SetParameters loads
// such a vector back.
//
// The parameter and gradient tensor lists are cached on first use so
// the per-step paths (optimizer update, gradient zeroing) allocate
// nothing; Layers must therefore not be modified after the model is
// first used.
type Model struct {
	Name   string
	Layers []Layer

	params, grads []*tensor.Tensor // cached flattening of the layer lists
}

// NewModel builds a model from layers.
func NewModel(name string, layers ...Layer) *Model {
	return &Model{Name: name, Layers: layers}
}

// Forward runs the full stack.
func (m *Model) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	for _, l := range m.Layers {
		x = l.Forward(x, train)
	}
	return x
}

// Backward propagates ∂L/∂output back through the stack, accumulating
// parameter gradients, and returns ∂L/∂input.
func (m *Model) Backward(grad *tensor.Tensor) *tensor.Tensor {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		grad = m.Layers[i].Backward(grad)
	}
	return grad
}

// ParamTensors returns every learnable tensor in layer order. The
// returned slice is cached and owned by the model; callers must not
// modify it.
func (m *Model) ParamTensors() []*tensor.Tensor {
	if m.params == nil {
		for _, l := range m.Layers {
			m.params = append(m.params, l.Params()...)
		}
	}
	return m.params
}

// GradTensors returns gradient tensors aligned with ParamTensors, with
// the same caching contract.
func (m *Model) GradTensors() []*tensor.Tensor {
	if m.grads == nil {
		for _, l := range m.Layers {
			m.grads = append(m.grads, l.Grads()...)
		}
	}
	return m.grads
}

// NumParams returns the total scalar parameter count.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.ParamTensors() {
		n += p.Len()
	}
	return n
}

// Parameters flattens all parameters into a single vector, the wire and
// aggregation format used throughout HADFL.
func (m *Model) Parameters() []float64 {
	return m.ParametersInto(make([]float64, m.NumParams()))
}

// ParametersInto flattens all parameters into dst (length NumParams)
// and returns it — the allocation-free round-trip partner of
// SetParameters for callers that gather device models every round.
func (m *Model) ParametersInto(dst []float64) []float64 {
	want := m.NumParams()
	if len(dst) != want {
		panic(fmt.Sprintf("nn: ParametersInto length %d, model has %d", len(dst), want))
	}
	off := 0
	for _, p := range m.ParamTensors() {
		copy(dst[off:off+p.Len()], p.Data())
		off += p.Len()
	}
	return dst
}

// SetParameters loads a flat vector produced by Parameters into the model.
// It panics if the length does not match.
func (m *Model) SetParameters(flat []float64) {
	want := m.NumParams()
	if len(flat) != want {
		panic(fmt.Sprintf("nn: SetParameters length %d, model has %d", len(flat), want))
	}
	off := 0
	for _, p := range m.ParamTensors() {
		copy(p.Data(), flat[off:off+p.Len()])
		off += p.Len()
	}
}

// ZeroGrads clears all accumulated gradients.
func (m *Model) ZeroGrads() {
	for _, g := range m.GradTensors() {
		g.Zero()
	}
}

// GradientVector flattens all gradients into one vector (for ring
// all-reduce in the distributed-training baseline).
func (m *Model) GradientVector() []float64 {
	return m.GradientVectorInto(make([]float64, m.NumParams()))
}

// GradientVectorInto flattens all gradients into dst (length
// NumParams) and returns it, so the per-iteration all-reduce path can
// reuse one gather buffer per device.
func (m *Model) GradientVectorInto(dst []float64) []float64 {
	want := m.NumParams()
	if len(dst) != want {
		panic(fmt.Sprintf("nn: GradientVectorInto length %d, model has %d", len(dst), want))
	}
	off := 0
	for _, g := range m.GradTensors() {
		copy(dst[off:off+g.Len()], g.Data())
		off += g.Len()
	}
	return dst
}

// SetGradientVector loads a flat gradient vector back into the model's
// gradient tensors (after an all-reduce).
func (m *Model) SetGradientVector(flat []float64) {
	want := m.NumParams()
	if len(flat) != want {
		panic(fmt.Sprintf("nn: SetGradientVector length %d, model has %d", len(flat), want))
	}
	off := 0
	for _, g := range m.GradTensors() {
		copy(g.Data(), flat[off:off+g.Len()])
		off += g.Len()
	}
}

// Predict returns the argmax class for each row of the logits produced on
// input x (inference mode).
func (m *Model) Predict(x *tensor.Tensor) []int {
	return m.PredictInto(nil, x)
}

// PredictInto is Predict writing into a caller-owned buffer: out is
// reused when its capacity suffices (nil allocates), so steady-state
// prediction loops stay heap-free. It returns the slice holding the
// argmax class per row.
func (m *Model) PredictInto(out []int, x *tensor.Tensor) []int {
	logits := m.Forward(x, false)
	n, c := logits.Dim(0), logits.Dim(1)
	if cap(out) < n {
		out = make([]int, n)
	}
	out = out[:n]
	ld := logits.Data()
	for i := 0; i < n; i++ {
		row := ld[i*c : (i+1)*c]
		best, arg := row[0], 0
		for j, v := range row[1:] {
			if v > best {
				best, arg = v, j+1
			}
		}
		out[i] = arg
	}
	return out
}

// Accuracy returns the fraction of rows of x classified as labels.
func (m *Model) Accuracy(x *tensor.Tensor, labels []int) float64 {
	return AccuracyFromLogits(m.Forward(x, false), labels)
}

// AccuracyFromLogits returns the fraction of logits rows whose argmax
// matches labels, letting callers that already ran a forward pass score
// accuracy without a second one. Ties resolve to the lowest class
// index, matching Predict.
func AccuracyFromLogits(logits *tensor.Tensor, labels []int) float64 {
	if logits.Dims() != 2 {
		panic(fmt.Sprintf("nn: AccuracyFromLogits logits %v, want 2-D", logits.Shape()))
	}
	n, c := logits.Dim(0), logits.Dim(1)
	if len(labels) != n {
		panic(fmt.Sprintf("nn: AccuracyFromLogits: %d rows vs %d labels", n, len(labels)))
	}
	ld := logits.Data()
	correct := 0
	for i := 0; i < n; i++ {
		row := ld[i*c : (i+1)*c]
		best, arg := row[0], 0
		for j, v := range row[1:] {
			if v > best {
				best, arg = v, j+1
			}
		}
		if arg == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}
