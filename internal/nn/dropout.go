package nn

import (
	"fmt"
	"math/rand"

	"hadfl/internal/tensor"
)

// Dropout randomly zeroes activations with probability P during
// training, scaling survivors by 1/(1−P) (inverted dropout) so
// inference needs no rescaling. VGG-style plain networks traditionally
// regularize their dense heads this way.
type Dropout struct {
	P   float64
	rng *rand.Rand

	mask []bool
}

// NewDropout constructs a dropout layer. p must be in [0, 1).
func NewDropout(rng *rand.Rand, p float64) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout p %v outside [0,1)", p))
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &Dropout{P: p, rng: rng}
}

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		return x
	}
	out := x.Clone()
	if cap(d.mask) < x.Len() {
		d.mask = make([]bool, x.Len())
	}
	d.mask = d.mask[:x.Len()]
	scale := 1 / (1 - d.P)
	for i := range out.Data() {
		if d.rng.Float64() < d.P {
			out.Data()[i] = 0
			d.mask[i] = false
		} else {
			out.Data()[i] *= scale
			d.mask[i] = true
		}
	}
	return out
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.P == 0 {
		return grad
	}
	out := grad.Clone()
	scale := 1 / (1 - d.P)
	for i := range out.Data() {
		if !d.mask[i] {
			out.Data()[i] = 0
		} else {
			out.Data()[i] *= scale
		}
	}
	return out
}

// Params implements Layer.
func (d *Dropout) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (d *Dropout) Grads() []*tensor.Tensor { return nil }
