package nn

import (
	"fmt"
	"math/rand"

	"hadfl/internal/tensor"
)

// Dropout randomly zeroes activations with probability P during
// training, scaling survivors by 1/(1−P) (inverted dropout) so
// inference needs no rescaling. VGG-style plain networks traditionally
// regularize their dense heads this way.
type Dropout struct {
	P   float64
	rng *rand.Rand

	mask    []bool
	out, dx *tensor.Tensor
}

// NewDropout constructs a dropout layer. p must be in [0, 1).
func NewDropout(rng *rand.Rand, p float64) *Dropout {
	if p < 0 || p >= 1 {
		panic(fmt.Sprintf("nn: dropout p %v outside [0,1)", p))
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &Dropout{P: p, rng: rng}
}

// Forward implements Layer.
func (d *Dropout) Forward(x *tensor.Tensor, train bool) *tensor.Tensor {
	if !train || d.P == 0 {
		return x
	}
	d.out = tensor.Ensure(d.out, x.Shape()...)
	if cap(d.mask) < x.Len() {
		d.mask = make([]bool, x.Len())
	}
	d.mask = d.mask[:x.Len()]
	scale := 1 / (1 - d.P)
	xd, od := x.Data(), d.out.Data()
	for i, v := range xd {
		if d.rng.Float64() < d.P {
			od[i] = 0
			d.mask[i] = false
		} else {
			od[i] = v * scale
			d.mask[i] = true
		}
	}
	return d.out
}

// Backward implements Layer.
func (d *Dropout) Backward(grad *tensor.Tensor) *tensor.Tensor {
	if d.P == 0 {
		return grad
	}
	d.dx = tensor.Ensure(d.dx, grad.Shape()...)
	scale := 1 / (1 - d.P)
	gd, od := grad.Data(), d.dx.Data()
	for i, v := range gd {
		if !d.mask[i] {
			od[i] = 0
		} else {
			od[i] = v * scale
		}
	}
	return d.dx
}

// Params implements Layer.
func (d *Dropout) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (d *Dropout) Grads() []*tensor.Tensor { return nil }
