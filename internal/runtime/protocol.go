// Package runtime implements the live (message-level) HADFL deployment:
// a coordinator process and worker processes exchanging real p2p
// messages — KindConfig plans out, KindReport telemetry back, parameter
// traffic strictly peer-to-peer via the fault-tolerant ring all-reduce
// and broadcasts. It runs over any p2p.Transport: the in-process ChanHub
// (tests) or TCP (cmd/hadfl-coordinator, cmd/hadfl-node).
//
// Heterogeneity is emulated exactly as in the paper: each worker sleeps
// proportionally to 1/power after every mini-batch.
package runtime

import (
	"fmt"

	"hadfl/internal/p2p"
)

// Plan wire format inside a KindConfig payload:
//
//	[0] kind: 0 = warm-up request, 1 = training round
//	[1] localSteps E_k for the receiving worker
//	[2] selected flag (1 = ring member)
//	[3] broadcaster flag (1 = this ring member broadcasts the aggregate)
//	[4] number of unselected devices that expect the broadcast
//	[5] ring length n (0 when unselected)
//	[6..6+n) ring member ids in ring order
//	[6+n..) unselected ids (only for the broadcaster)
//
// Report wire format inside a KindReport payload:
//
//	[0] parameter version (total local steps)
//	[1] mean training loss over the round
//	[2] calculation seconds for the round (wall time incl. emulated sleep)
const (
	planWarmup   = 0
	planTraining = 1
)

// configPayload encodes a per-worker round plan.
type configPayload struct {
	Kind        int
	LocalSteps  int
	Selected    bool
	Broadcaster bool
	ExpectBcast int
	Ring        []int
	Unselected  []int
}

func (c configPayload) encode() []float64 {
	out := []float64{
		float64(c.Kind), float64(c.LocalSteps),
		boolF(c.Selected), boolF(c.Broadcaster),
		float64(c.ExpectBcast), float64(len(c.Ring)),
	}
	for _, id := range c.Ring {
		out = append(out, float64(id))
	}
	for _, id := range c.Unselected {
		out = append(out, float64(id))
	}
	return out
}

func decodeConfig(p []float64) (configPayload, error) {
	if len(p) < 6 {
		return configPayload{}, fmt.Errorf("runtime: config payload too short: %d", len(p))
	}
	c := configPayload{
		Kind:        int(p[0]),
		LocalSteps:  int(p[1]),
		Selected:    p[2] != 0,
		Broadcaster: p[3] != 0,
		ExpectBcast: int(p[4]),
	}
	n := int(p[5])
	if n < 0 || 6+n > len(p) {
		return configPayload{}, fmt.Errorf("runtime: config ring length %d exceeds payload %d", n, len(p))
	}
	for i := 0; i < n; i++ {
		c.Ring = append(c.Ring, int(p[6+i]))
	}
	for i := 6 + n; i < len(p); i++ {
		c.Unselected = append(c.Unselected, int(p[i]))
	}
	return c, nil
}

// reportPayload is worker→coordinator telemetry.
type reportPayload struct {
	Version  float64
	Loss     float64
	CalcSecs float64
}

func (r reportPayload) encode() []float64 {
	return []float64{r.Version, r.Loss, r.CalcSecs}
}

func decodeReport(p []float64) (reportPayload, error) {
	if len(p) < 3 {
		return reportPayload{}, fmt.Errorf("runtime: report payload too short: %d", len(p))
	}
	return reportPayload{Version: p[0], Loss: p[1], CalcSecs: p[2]}, nil
}

func boolF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// sendConfig ships a plan to one worker.
func sendConfig(tr p2p.Transport, to, round int, c configPayload) error {
	return tr.Send(p2p.Message{
		Kind: p2p.KindConfig, To: to, Round: round, Payload: c.encode(),
	})
}
