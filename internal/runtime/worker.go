package runtime

import (
	"fmt"
	"time"

	"hadfl/internal/aggregate"
	"hadfl/internal/dataset"
	"hadfl/internal/nn"
	"hadfl/internal/p2p"
)

// WorkerConfig configures one live training worker.
type WorkerConfig struct {
	ID      int
	CoordID int
	// Power is the emulated computing-power ratio: after each step the
	// worker sleeps SleepUnit/Power, the paper's sleep() heterogeneity.
	Power float64
	// SleepUnit is the per-step sleep at power 1 (wall time). Zero
	// disables the emulation (full speed).
	SleepUnit time.Duration

	Model  *nn.Model
	Opt    *nn.SGD
	Loader *dataset.Loader

	// WarmupEpochs and WarmupLRScale drive the mutual-negotiation phase.
	WarmupEpochs  int
	WarmupLRScale float64
	// MergeBeta is the broadcast integration weight (see aggregate.Merge).
	MergeBeta float64

	RingOpt p2p.RingOptions
	// ConfigTimeout is how long to wait for the next coordinator plan
	// before giving up.
	ConfigTimeout time.Duration
	// BcastTimeout is how long an unselected worker waits for the
	// aggregated model broadcast.
	BcastTimeout time.Duration
}

// Worker is a live HADFL device process.
type Worker struct {
	cfg     WorkerConfig
	tr      p2p.Transport
	version int
}

// NewWorker wires a worker to its transport.
func NewWorker(cfg WorkerConfig, tr p2p.Transport) (*Worker, error) {
	if cfg.Power <= 0 {
		return nil, fmt.Errorf("runtime: power %v", cfg.Power)
	}
	if cfg.Model == nil || cfg.Opt == nil || cfg.Loader == nil {
		return nil, fmt.Errorf("runtime: worker %d missing model/opt/loader", cfg.ID)
	}
	if cfg.WarmupEpochs < 1 {
		cfg.WarmupEpochs = 1
	}
	if cfg.WarmupLRScale <= 0 {
		cfg.WarmupLRScale = 0.1
	}
	if cfg.MergeBeta <= 0 {
		cfg.MergeBeta = 1
	}
	if cfg.ConfigTimeout <= 0 {
		cfg.ConfigTimeout = 30 * time.Second
	}
	if cfg.BcastTimeout <= 0 {
		cfg.BcastTimeout = 10 * time.Second
	}
	if cfg.RingOpt.DataTimeout <= 0 {
		cfg.RingOpt = p2p.DefaultRingOptions()
		cfg.RingOpt.DataTimeout = 2 * time.Second
		cfg.RingOpt.HandshakeTimeout = time.Second
	}
	return &Worker{cfg: cfg, tr: tr}, nil
}

// Version returns the worker's parameter version (total local steps).
func (w *Worker) Version() int { return w.version }

// Model exposes the worker's local model (for evaluation after a run).
func (w *Worker) Model() *nn.Model { return w.cfg.Model }

// Run executes the worker loop until the coordinator stops sending
// plans (config timeout) or rounds plans arrive with Round < 0
// (shutdown marker). It returns the number of training rounds completed.
func (w *Worker) Run() (rounds int, err error) {
	for {
		msg, ok := w.waitConfig()
		if !ok {
			return rounds, nil // coordinator gone: clean exit
		}
		if msg.Round < 0 {
			return rounds, nil // explicit shutdown
		}
		plan, err := decodeConfig(msg.Payload)
		if err != nil {
			return rounds, err
		}
		switch plan.Kind {
		case planWarmup:
			if err := w.warmup(msg.Round); err != nil {
				return rounds, err
			}
		case planTraining:
			if err := w.trainRound(msg.Round, plan); err != nil {
				return rounds, err
			}
			rounds++
		default:
			return rounds, fmt.Errorf("runtime: unknown plan kind %d", plan.Kind)
		}
	}
}

// waitConfig blocks for the next KindConfig, servicing handshakes so ring
// peers probing this worker between rounds still get Acks.
func (w *Worker) waitConfig() (p2p.Message, bool) {
	deadline := time.Now().Add(w.cfg.ConfigTimeout)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return p2p.Message{}, false
		}
		m, ok := w.tr.Recv(remain)
		if !ok {
			return p2p.Message{}, false
		}
		switch m.Kind {
		case p2p.KindConfig:
			return m, true
		case p2p.KindHandshake, p2p.KindHeartbeat:
			_ = w.tr.Send(p2p.Message{Kind: p2p.KindAck, To: m.From, Round: m.Round})
		default:
			// Stale broadcast or ring traffic from the previous round.
		}
	}
}

// step runs one local mini-batch with the paper's sleep()-based
// heterogeneity emulation, returning the loss.
func (w *Worker) step() float64 {
	x, y := w.cfg.Loader.Next()
	logits := w.cfg.Model.Forward(x, true)
	loss, grad := nn.SoftmaxCrossEntropy(logits, y)
	w.cfg.Model.Backward(grad)
	w.cfg.Opt.Step(w.cfg.Model)
	w.version++
	if w.cfg.SleepUnit > 0 {
		time.Sleep(time.Duration(float64(w.cfg.SleepUnit) / w.cfg.Power))
	}
	return loss
}

// warmup runs the mutual-negotiation phase and reports T_i.
func (w *Worker) warmup(round int) error {
	start := time.Now()
	origLR := w.cfg.Opt.LR
	w.cfg.Opt.LR = origLR * w.cfg.WarmupLRScale
	steps := w.cfg.WarmupEpochs * w.cfg.Loader.BatchesPerEpoch()
	if steps < 1 {
		steps = w.cfg.WarmupEpochs
	}
	var loss float64
	for i := 0; i < steps; i++ {
		loss = w.step()
	}
	w.cfg.Opt.LR = origLR
	rep := reportPayload{
		Version:  float64(w.version),
		Loss:     loss,
		CalcSecs: time.Since(start).Seconds(),
	}
	return w.tr.Send(p2p.Message{
		Kind: p2p.KindReport, To: w.cfg.CoordID, Round: round, Payload: rep.encode(),
	})
}

// trainRound executes one HADFL round: E_k local steps, then partial
// synchronization per the plan.
func (w *Worker) trainRound(round int, plan configPayload) error {
	start := time.Now()
	lossSum := 0.0
	steps := plan.LocalSteps
	if steps < 1 {
		steps = 1
	}
	for i := 0; i < steps; i++ {
		lossSum += w.step()
	}

	if plan.Selected {
		sum, survivors, err := p2p.RingAllReduce(w.tr, plan.Ring, round, w.cfg.Model.Parameters(), w.cfg.RingOpt)
		if err != nil {
			return fmt.Errorf("runtime: worker %d round %d all-reduce: %w", w.cfg.ID, round, err)
		}
		aggregate.ScaleInPlace(sum, 1/float64(len(survivors)))
		w.cfg.Model.SetParameters(sum)
		w.cfg.Opt.Reset()
		if plan.Broadcaster {
			p2p.Broadcast(w.tr, plan.Unselected, p2p.Message{
				Kind: p2p.KindBroadcast, Round: round, Payload: sum,
			})
		}
	} else if plan.ExpectBcast > 0 {
		if agg, ok := w.waitBroadcast(round); ok {
			merged := aggregate.Merge(w.cfg.Model.Parameters(), agg, w.cfg.MergeBeta)
			w.cfg.Model.SetParameters(merged)
			w.cfg.Opt.Reset()
		}
		// A missing broadcast is tolerated: the worker continues on its
		// local model (non-blocking broadcast semantics).
	}

	rep := reportPayload{
		Version:  float64(w.version),
		Loss:     lossSum / float64(steps),
		CalcSecs: time.Since(start).Seconds(),
	}
	return w.tr.Send(p2p.Message{
		Kind: p2p.KindReport, To: w.cfg.CoordID, Round: round, Payload: rep.encode(),
	})
}

// waitBroadcast waits for this round's aggregated model, answering
// handshake probes meanwhile.
func (w *Worker) waitBroadcast(round int) ([]float64, bool) {
	deadline := time.Now().Add(w.cfg.BcastTimeout)
	for {
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, false
		}
		m, ok := w.tr.Recv(remain)
		if !ok {
			return nil, false
		}
		switch m.Kind {
		case p2p.KindBroadcast:
			if m.Round == round {
				return m.Payload, true
			}
		case p2p.KindHandshake, p2p.KindHeartbeat:
			_ = w.tr.Send(p2p.Message{Kind: p2p.KindAck, To: m.From, Round: m.Round})
		}
	}
}
