package runtime

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"hadfl/internal/dataset"
	"hadfl/internal/nn"
	"hadfl/internal/p2p"
	"hadfl/internal/strategy"
)

func TestConfigPayloadRoundTrip(t *testing.T) {
	c := configPayload{
		Kind: planTraining, LocalSteps: 17, Selected: true, Broadcaster: true,
		ExpectBcast: 0, Ring: []int{2, 0, 3}, Unselected: []int{1},
	}
	got, err := decodeConfig(c.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != c.Kind || got.LocalSteps != 17 || !got.Selected || !got.Broadcaster {
		t.Fatalf("got %+v", got)
	}
	if len(got.Ring) != 3 || got.Ring[0] != 2 || got.Ring[2] != 3 {
		t.Fatalf("ring %v", got.Ring)
	}
	if len(got.Unselected) != 1 || got.Unselected[0] != 1 {
		t.Fatalf("unselected %v", got.Unselected)
	}
}

func TestConfigPayloadRejectsTruncated(t *testing.T) {
	if _, err := decodeConfig([]float64{1, 2}); err == nil {
		t.Fatal("short payload accepted")
	}
	if _, err := decodeConfig([]float64{1, 2, 0, 0, 0, 99}); err == nil {
		t.Fatal("overlong ring accepted")
	}
}

func TestReportPayloadRoundTrip(t *testing.T) {
	r := reportPayload{Version: 120, Loss: 0.75, CalcSecs: 3.5}
	got, err := decodeReport(r.encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Fatalf("got %+v", got)
	}
	if _, err := decodeReport([]float64{1}); err == nil {
		t.Fatal("short report accepted")
	}
}

// buildLiveFederation wires a coordinator and K workers over a ChanHub.
func buildLiveFederation(t *testing.T, powers []float64, rounds int, sleepUnit time.Duration) (*LiveCoordinator, []*Worker, *dataset.Dataset) {
	t.Helper()
	const coordID = 1000
	hub := p2p.NewChanHub()
	full := dataset.Synthetic(dataset.SyntheticConfig{
		Samples: 1000, Features: 12, Classes: 4, ModesPerClass: 2, NoiseStd: 0.35, Seed: 5,
	})
	train, test := full.Split(800)
	parts := dataset.PartitionIID(train, len(powers), rand.New(rand.NewSource(6)))

	ref := nn.NewMLP(rand.New(rand.NewSource(7)), 12, []int{16}, 4)
	init := ref.Parameters()

	var workerIDs []int
	var workers []*Worker
	for i, p := range powers {
		m := nn.NewMLP(rand.New(rand.NewSource(8+int64(i))), 12, []int{16}, 4)
		m.SetParameters(init)
		w, err := NewWorker(WorkerConfig{
			ID: i, CoordID: coordID, Power: p, SleepUnit: sleepUnit,
			Model: m, Opt: nn.NewSGD(0.1, 0.9, 0),
			Loader:       dataset.NewLoader(parts[i], 16, rand.New(rand.NewSource(20+int64(i)))),
			WarmupEpochs: 1,
			RingOpt: p2p.RingOptions{
				DataTimeout:      500 * time.Millisecond,
				HandshakeTimeout: 250 * time.Millisecond,
				MaxReforms:       3,
			},
			// ConfigTimeout must exceed the coordinator's ReportTimeout:
			// when a peer dies, the coordinator stalls a full report
			// window while live workers idle in waitConfig.
			ConfigTimeout: 12 * time.Second,
			BcastTimeout:  2 * time.Second,
		}, hub.Node(i))
		if err != nil {
			t.Fatal(err)
		}
		workers = append(workers, w)
		workerIDs = append(workerIDs, i)
	}
	lc, err := NewLiveCoordinator(CoordinatorConfig{
		ID: coordID, Workers: workerIDs,
		// Quantum/MaxFactor keep the hyperperiod LCM tame under noisy
		// wall-clock warm-up measurements; otherwise a near-coprime pair
		// of epoch times can cap out at a multi-second sync period that
		// outlasts the report window.
		Strategy:      strategy.Config{Tsync: 1, Np: 2, Quantum: 0.005, MaxFactor: 4},
		Alpha:         0.5,
		Rounds:        rounds,
		ReportTimeout: 5 * time.Second,
		Seed:          1,
	}, hub.Node(coordID))
	if err != nil {
		t.Fatal(err)
	}
	return lc, workers, test
}

func TestLiveFederationEndToEnd(t *testing.T) {
	// SleepUnit > 0 turns on the paper's sleep()-based heterogeneity
	// emulation; without it every worker measures the same speed and the
	// planner correctly assigns near-uniform steps. The unit must be
	// large enough to dominate scheduler noise on a loaded machine.
	lc, workers, test := buildLiveFederation(t, []float64{4, 2, 2, 1}, 5, 5*time.Millisecond)
	var statuses []RoundStatus
	lc.OnRound = func(s RoundStatus) { statuses = append(statuses, s) }

	var wg sync.WaitGroup
	workerRounds := make([]int, len(workers))
	for i, w := range workers {
		i, w := i, w
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := w.Run()
			if err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
			workerRounds[i] = r
		}()
	}
	if err := lc.Run(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if len(statuses) != 5 {
		t.Fatalf("%d round statuses", len(statuses))
	}
	for _, s := range statuses {
		if len(s.Reports) != 4 {
			t.Fatalf("round %d got %d reports", s.Round, len(s.Reports))
		}
		if len(s.Plan.Selected) != 2 {
			t.Fatalf("round %d selected %v", s.Round, s.Plan.Selected)
		}
	}
	for i, r := range workerRounds {
		if r != 5 {
			t.Fatalf("worker %d completed %d rounds", i, r)
		}
	}
	// The faster device must have computed more local steps overall.
	if workers[0].Version() <= workers[3].Version() {
		t.Fatalf("power-4 worker version %d not above power-1 worker %d",
			workers[0].Version(), workers[3].Version())
	}
	// The federation learned something: evaluate worker 0's model.
	acc := workers[0].cfg.Model.Accuracy(test.X, test.Y)
	if acc < 0.5 {
		t.Fatalf("live federation accuracy %.2f", acc)
	}
	// Loss telemetry decreased from the first to the last round.
	if statuses[len(statuses)-1].MeanLoss >= statuses[0].MeanLoss {
		t.Logf("warning: loss did not decrease (%v → %v) — acceptable for 5 rounds",
			statuses[0].MeanLoss, statuses[len(statuses)-1].MeanLoss)
	}
}

func TestLiveFederationSleepEmulation(t *testing.T) {
	// With sleep-based heterogeneity (the paper's method), the power-4
	// worker is assigned more local steps than the power-1 worker.
	lc, workers, _ := buildLiveFederation(t, []float64{4, 1}, 2, 5*time.Millisecond)
	var mu sync.Mutex
	stepsByRound := map[int]map[int]int{}
	lc.OnRound = func(s RoundStatus) {
		mu.Lock()
		defer mu.Unlock()
		m := map[int]int{}
		for id, e := range s.Plan.LocalSteps {
			m[id] = e
		}
		stepsByRound[s.Round] = m
	}
	var wg sync.WaitGroup
	for _, w := range workers {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := w.Run(); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	if err := lc.Run(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	mu.Lock()
	defer mu.Unlock()
	last := stepsByRound[2]
	if last == nil {
		t.Fatal("no round-2 plan recorded")
	}
	if last[0] <= last[1] {
		t.Fatalf("fast worker steps %d not above slow worker %d", last[0], last[1])
	}
}

func TestLiveFederationWorkerDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("report-timeout federation in -short mode")
	}
	// A worker that dies after warm-up is marked dead and the federation
	// completes the remaining rounds without it.
	lc, workers, _ := buildLiveFederation(t, []float64{2, 2, 1, 1}, 4, 0)
	var statuses []RoundStatus
	lc.OnRound = func(s RoundStatus) { statuses = append(statuses, s) }

	var wg sync.WaitGroup
	for i, w := range workers {
		i, w := i, w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if i == 3 {
				// Worker 3 completes warm-up + one round, then vanishes.
				w.cfg.ConfigTimeout = time.Second
				msg, ok := w.waitConfig()
				if !ok {
					return
				}
				plan, _ := decodeConfig(msg.Payload)
				_ = w.warmup(msg.Round)
				_ = plan
				return // dead: never participates in training rounds
			}
			if _, err := w.Run(); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}()
	}
	if err := lc.Run(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if len(statuses) != 4 {
		t.Fatalf("%d rounds", len(statuses))
	}
	// After round 1 times out on worker 3, later rounds exclude it.
	lastReports := statuses[len(statuses)-1].Reports
	if _, ok := lastReports[3]; ok {
		t.Fatal("dead worker reported in final round")
	}
	if len(lastReports) != 3 {
		t.Fatalf("final round has %d reports, want 3", len(lastReports))
	}
}

func TestWorkerValidation(t *testing.T) {
	hub := p2p.NewChanHub()
	if _, err := NewWorker(WorkerConfig{ID: 0, Power: 0}, hub.Node(0)); err == nil {
		t.Fatal("power 0 accepted")
	}
	if _, err := NewWorker(WorkerConfig{ID: 0, Power: 1}, hub.Node(0)); err == nil {
		t.Fatal("missing model accepted")
	}
}

func TestCoordinatorValidation(t *testing.T) {
	hub := p2p.NewChanHub()
	if _, err := NewLiveCoordinator(CoordinatorConfig{ID: 1, Rounds: 1, Strategy: strategy.Config{Tsync: 1, Np: 1}}, hub.Node(1)); err == nil {
		t.Fatal("no workers accepted")
	}
	if _, err := NewLiveCoordinator(CoordinatorConfig{ID: 1, Workers: []int{0}, Rounds: 0, Strategy: strategy.Config{Tsync: 1, Np: 1}}, hub.Node(1)); err == nil {
		t.Fatal("zero rounds accepted")
	}
	if _, err := NewLiveCoordinator(CoordinatorConfig{ID: 1, Workers: []int{0}, Rounds: 1, Strategy: strategy.Config{Tsync: 0, Np: 1}}, hub.Node(1)); err == nil {
		t.Fatal("invalid strategy accepted")
	}
}

func TestBoolF(t *testing.T) {
	if boolF(true) != 1 || boolF(false) != 0 {
		t.Fatal("boolF broken")
	}
	if math.IsNaN(boolF(true)) {
		t.Fatal("NaN")
	}
}
