package runtime

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"hadfl/internal/coordinator"
	"hadfl/internal/p2p"
	"hadfl/internal/strategy"
)

// CoordinatorConfig configures the live coordinator.
type CoordinatorConfig struct {
	ID      int   // coordinator's transport id
	Workers []int // worker ids
	// Strategy holds Tsync/Np/selection parameters.
	Strategy strategy.Config
	// Alpha is the version-predictor smoothing factor.
	Alpha float64
	// Rounds is how many training rounds to orchestrate.
	Rounds int
	// ReportTimeout bounds the wait for worker reports each round;
	// silent workers are marked dead and excluded from the next plan.
	ReportTimeout time.Duration
	// StepsPerEpoch converts the strategy's epoch-denominated plan into
	// local steps for live workers (the live path has no virtual clock,
	// so E_k is derived from measured calc times).
	Seed int64
}

// RoundStatus is the per-round telemetry the live coordinator reports.
type RoundStatus struct {
	Round    int
	Plan     strategy.Plan
	Reports  map[int]reportPayload
	MeanLoss float64
}

// LiveCoordinator orchestrates live workers over a transport.
type LiveCoordinator struct {
	cfg   CoordinatorConfig
	tr    p2p.Transport
	coord *coordinator.Coordinator
	// OnRound, if set, receives telemetry after every round.
	OnRound func(RoundStatus)
}

// NewLiveCoordinator wires a coordinator to its transport.
func NewLiveCoordinator(cfg CoordinatorConfig, tr p2p.Transport) (*LiveCoordinator, error) {
	if len(cfg.Workers) == 0 {
		return nil, fmt.Errorf("runtime: no workers")
	}
	if cfg.Rounds < 1 {
		return nil, fmt.Errorf("runtime: rounds %d", cfg.Rounds)
	}
	if cfg.Alpha <= 0 || cfg.Alpha >= 1 {
		cfg.Alpha = 0.5
	}
	if cfg.ReportTimeout <= 0 {
		cfg.ReportTimeout = 60 * time.Second
	}
	if err := cfg.Strategy.Validate(len(cfg.Workers)); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed + 77))
	return &LiveCoordinator{
		cfg:   cfg,
		tr:    tr,
		coord: coordinator.New(cfg.Strategy, cfg.Alpha, 8, rng),
	}, nil
}

// Run drives warm-up plus cfg.Rounds training rounds, then sends the
// shutdown marker (Round = −1) to all workers.
func (lc *LiveCoordinator) Run() error {
	defer func() {
		for _, id := range lc.cfg.Workers {
			_ = sendConfig(lc.tr, id, -1, configPayload{Kind: planTraining})
		}
	}()

	// --- Warm-up: ask every worker to run the mutual-negotiation phase.
	for _, id := range lc.cfg.Workers {
		if err := sendConfig(lc.tr, id, 0, configPayload{Kind: planWarmup}); err != nil {
			return err
		}
	}
	reports := lc.collectReports(0, lc.cfg.Workers)
	if len(reports) == 0 {
		return fmt.Errorf("runtime: no workers completed warm-up")
	}
	now := 0.0
	for id, rep := range reports {
		// Per-step time from the warm-up measurement; the loader's
		// batches/epoch is unknown here, so treat the warm-up as one
		// "epoch" and derive steps from the version delta.
		steps := rep.Version
		if steps <= 0 {
			steps = 1
		}
		stepTime := rep.CalcSecs / steps
		if err := lc.coord.RegisterProfile(coordinator.DeviceProfile{
			ID:           id,
			EpochTime:    rep.CalcSecs,
			StepTime:     stepTime,
			WarmupTime:   rep.CalcSecs,
			WarmupEpochs: 1,
		}, now); err != nil {
			return err
		}
	}

	// --- Training rounds.
	for round := 1; round <= lc.cfg.Rounds; round++ {
		plan, avail, err := lc.coord.NextPlan(now, 1e18)
		if err != nil {
			return fmt.Errorf("runtime: round %d: %w", round, err)
		}
		unselected := plan.Unselected(avail)
		broadcaster := -1
		if len(plan.Ring) > 0 {
			broadcaster = plan.Ring[0]
		}
		for _, id := range avail {
			cp := configPayload{
				Kind:       planTraining,
				LocalSteps: plan.LocalSteps[id],
			}
			if contains(plan.Selected, id) {
				cp.Selected = true
				cp.Ring = plan.Ring
				if id == broadcaster {
					cp.Broadcaster = true
					cp.Unselected = unselected
				}
			} else {
				cp.ExpectBcast = 1
			}
			if err := sendConfig(lc.tr, id, round, cp); err != nil {
				return err
			}
		}
		reports := lc.collectReports(round, avail)
		now += 1 // liveness bookkeeping advances once per round
		meanLoss := 0.0
		for id, rep := range reports {
			lc.coord.ReportVersion(id, rep.Version, now)
			meanLoss += rep.Loss
		}
		if len(reports) > 0 {
			meanLoss /= float64(len(reports))
		}
		// Workers that stayed silent are treated as dead for planning.
		for _, id := range avail {
			if _, ok := reports[id]; !ok {
				lc.coord.Liveness.MarkDead(id)
			}
		}
		if lc.OnRound != nil {
			lc.OnRound(RoundStatus{Round: round, Plan: plan, Reports: reports, MeanLoss: meanLoss})
		}
	}
	return nil
}

// collectReports gathers KindReport messages for the round until all
// expected workers answered or the timeout elapses.
func (lc *LiveCoordinator) collectReports(round int, expect []int) map[int]reportPayload {
	want := map[int]bool{}
	for _, id := range expect {
		want[id] = true
	}
	out := map[int]reportPayload{}
	deadline := time.Now().Add(lc.cfg.ReportTimeout)
	for len(out) < len(expect) {
		remain := time.Until(deadline)
		if remain <= 0 {
			break
		}
		m, ok := lc.tr.Recv(remain)
		if !ok {
			break
		}
		if m.Kind != p2p.KindReport || m.Round != round || !want[m.From] {
			continue
		}
		rep, err := decodeReport(m.Payload)
		if err != nil {
			continue
		}
		out[m.From] = rep
	}
	return out
}

// Store exposes the model-backup store (empty in the live demo: the
// coordinator never sees parameters, underlining the decentralized data
// plane; workers could push snapshots with KindParams if desired).
func (lc *LiveCoordinator) Store() *coordinator.ModelStore { return lc.coord.Store }

func contains(xs []int, x int) bool {
	i := sort.SearchInts(xs, x)
	return i < len(xs) && xs[i] == x
}
