// Package eval implements the batched evaluation engine: scoring a
// flat parameter vector against a labelled dataset in fixed-size
// batches, with one forward pass per batch producing loss and accuracy
// together (the training side of this contract is nn's fused
// SoftmaxCrossEntropyEvalInto kernel).
//
// Parallelism. Batch-level sharding runs on the engine's own bounded
// goroutines — one per scoring replica, capped by tensor.Parallelism()
// — while each batch's forward pass runs on the shared tensor worker
// pool as usual. The engine deliberately does not submit its shard
// bodies to that pool: pool tasks must be leaves (a shard body waits
// on the nested kernel dispatches of a whole forward pass, and pool
// workers blocked in such waits can starve the very kernel tasks they
// are waiting for).
//
// Determinism contract. However scoring is sharded, every quantity the
// engine reports is bit-identical at every parallelism level and every
// batch size:
//
//   - per-sample losses land in one flat buffer indexed by dataset
//     position, and batches slice the dataset contiguously, so the
//     buffer's contents do not depend on how samples were batched
//     (every kernel under Model.Forward computes output rows
//     independently, in a fixed per-row operation order);
//   - the loss reduction over that buffer runs in fixed tensor-layer
//     chunks (tensor.VecSum), so its bits depend only on the dataset
//     size;
//   - accuracy is an integer correct-count, summed exactly.
//
// Buffer ownership. The engine owns everything it touches between
// calls: the scoring replicas (models whose layer buffers persist),
// one row-slice view per replica, the per-sample loss buffer and the
// per-batch correct counts. Callers own only the parameter vector they
// pass in, which is read, never retained. In steady state — same
// dataset, same batch size — an evaluation performs zero heap
// allocations on the serial kernel path (tensor.Parallelism() == 1);
// parallel dispatch spends a few words on goroutine coordination, as
// the tensor kernels do.
//
// An Evaluator is not safe for concurrent use: it reuses its buffers
// across calls, so evaluations must be serialized by the caller (the
// training runners evaluate between rounds, which does this
// naturally).
package eval

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"hadfl/internal/dataset"
	"hadfl/internal/nn"
	"hadfl/internal/tensor"
)

// DefaultBatchSize is the scoring batch size when Config.BatchSize is
// unset: large enough to amortize per-batch overhead, small enough
// that several batches exist to shard on typical test splits.
const DefaultBatchSize = 256

// Config assembles an Evaluator.
type Config struct {
	// Data is the labelled set to score against.
	Data *dataset.Dataset
	// Model is the primary scoring replica. The engine owns it (and
	// its layer buffers) after New.
	Model *nn.Model
	// NewReplica builds an additional scoring replica with the same
	// architecture as Model; the engine overwrites its parameters
	// before use. nil confines the engine to the primary replica: the
	// remainder batch then reshapes the primary's layer buffers, so
	// only a factory-equipped engine reaches steady-state zero
	// allocations when the dataset size is not a batch multiple.
	NewReplica func() *nn.Model
	// BatchSize is the fixed scoring batch size, clamped to the
	// dataset size; 0 means DefaultBatchSize.
	BatchSize int
}

// Result holds one evaluation's outputs.
type Result struct {
	// Loss is the mean cross-entropy over the dataset.
	Loss float64
	// Accuracy is the fraction of samples classified correctly (0..1).
	Accuracy float64
	// Samples and Batches describe the pass that produced the scores.
	Samples, Batches int
}

// Stats is cumulative engine telemetry, exported by the serve layer as
// eval_batches_total / eval_seconds_total.
type Stats struct {
	// Evals counts EvaluateInto calls; Batches the forward passes they
	// performed.
	Evals, Batches int64
	// Seconds is wall-clock time spent scoring.
	Seconds float64
}

// replica is one scoring model plus its reused dataset view.
type replica struct {
	model *nn.Model
	view  *tensor.Tensor
}

// Evaluator scores parameter vectors against one dataset. See the
// package documentation for the determinism and ownership contracts.
type Evaluator struct {
	data       *dataset.Dataset
	batch      int
	newReplica func() *nn.Model

	// replicas[0] is Config.Model; more are built on demand, capped by
	// the batch count. rem is the dedicated remainder-batch replica, so
	// the full-batch replicas keep stable buffer shapes.
	replicas []*replica
	rem      *replica

	fullBatches int // batches of exactly batch samples
	remSize     int // samples in the trailing partial batch (0 = none)

	sampleLoss   []float64 // per-sample loss, indexed by dataset position
	correctBatch []int     // per-batch correct counts, disjoint writes

	evals, batches, nanos atomic.Int64
}

// New builds an Evaluator. Data and Model are required; Model must
// accept Data's sample shape.
func New(cfg Config) (*Evaluator, error) {
	if cfg.Data == nil || cfg.Data.Len() == 0 {
		return nil, fmt.Errorf("eval: empty dataset")
	}
	if cfg.Model == nil {
		return nil, fmt.Errorf("eval: Model is required")
	}
	n := cfg.Data.Len()
	b := cfg.BatchSize
	if b <= 0 {
		b = DefaultBatchSize
	}
	if b > n {
		b = n
	}
	e := &Evaluator{
		data:        cfg.Data,
		batch:       b,
		newReplica:  cfg.NewReplica,
		replicas:    []*replica{{model: cfg.Model}},
		fullBatches: n / b,
		remSize:     n % b,
		sampleLoss:  make([]float64, n),
	}
	e.correctBatch = make([]int, e.numBatches())
	return e, nil
}

// BatchSize returns the fixed scoring batch size.
func (e *Evaluator) BatchSize() int { return e.batch }

func (e *Evaluator) numBatches() int {
	nb := e.fullBatches
	if e.remSize > 0 {
		nb++
	}
	return nb
}

// Stats returns cumulative telemetry for every evaluation so far.
func (e *Evaluator) Stats() Stats {
	return Stats{
		Evals:   e.evals.Load(),
		Batches: e.batches.Load(),
		Seconds: float64(e.nanos.Load()) / 1e9,
	}
}

// Evaluate scores params and returns mean loss and accuracy.
func (e *Evaluator) Evaluate(params []float64) (loss, acc float64) {
	var res Result
	e.EvaluateInto(&res, params)
	return res.Loss, res.Accuracy
}

// EvaluateInto scores params into res: one forward pass per batch
// produces loss and accuracy together. Full-size batches shard across
// at most tensor.Parallelism() scoring replicas, each owned by one
// goroutine pulling batch indices from a shared counter; the trailing
// partial batch, if any, is scored on its own replica so the
// full-batch replicas keep stable buffer shapes. Results are
// bit-identical at every parallelism level and batch size.
func (e *Evaluator) EvaluateInto(res *Result, params []float64) {
	//lint:ignore walltime EvalSeconds telemetry only; the clock never reaches loss/accuracy numerics
	start := time.Now()
	n := e.data.Len()
	nb := e.numBatches()

	p := tensor.Parallelism()
	if p > e.fullBatches {
		p = e.fullBatches
	}
	if e.newReplica == nil || p < 1 {
		p = 1
	}
	e.ensureReplicas(p)
	for _, r := range e.replicas[:p] {
		r.model.SetParameters(params)
	}

	if p <= 1 {
		r := e.replicas[0]
		for b := 0; b < e.fullBatches; b++ {
			e.scoreBatch(r, b)
		}
	} else {
		var next atomic.Int64
		work := func(r *replica) {
			for {
				b := int(next.Add(1)) - 1
				if b >= e.fullBatches {
					return
				}
				e.scoreBatch(r, b)
			}
		}
		var wg sync.WaitGroup
		for _, r := range e.replicas[1:p] {
			wg.Add(1)
			go func(r *replica) {
				defer wg.Done()
				work(r)
			}(r)
		}
		work(e.replicas[0])
		wg.Wait()
	}
	if e.remSize > 0 {
		e.scoreBatch(e.remainderReplica(params), e.fullBatches)
	}

	correct := 0
	for _, c := range e.correctBatch {
		correct += c
	}
	res.Loss = tensor.VecSum(e.sampleLoss) / float64(n)
	res.Accuracy = float64(correct) / float64(n)
	res.Samples = n
	res.Batches = nb

	e.evals.Add(1)
	e.batches.Add(int64(nb))
	//lint:ignore walltime EvalSeconds telemetry only; the clock never reaches loss/accuracy numerics
	e.nanos.Add(time.Since(start).Nanoseconds())
}

// scoreBatch runs batch b — samples [b*batch, min((b+1)*batch, n)) —
// through r and records its per-sample losses and correct count. All
// writes are disjoint per batch index.
func (e *Evaluator) scoreBatch(r *replica, b int) {
	lo := b * e.batch
	hi := lo + e.batch
	if n := e.data.Len(); hi > n {
		hi = n
	}
	r.view = tensor.SliceRows(r.view, e.data.X, lo, hi)
	logits := r.model.Forward(r.view, false)
	e.correctBatch[b] = nn.SoftmaxCrossEntropyEvalInto(e.sampleLoss[lo:hi], logits, e.data.Y[lo:hi])
}

// ensureReplicas grows the replica set to p. Growth allocates; steady
// state does not.
func (e *Evaluator) ensureReplicas(p int) {
	for len(e.replicas) < p {
		e.replicas = append(e.replicas, &replica{model: e.newReplica()})
	}
}

// remainderReplica returns the dedicated partial-batch replica with
// params loaded. Without a factory it falls back to the primary
// replica, whose layer buffers then reshape between batch sizes.
func (e *Evaluator) remainderReplica(params []float64) *replica {
	if e.newReplica == nil {
		return e.replicas[0]
	}
	if e.rem == nil {
		e.rem = &replica{model: e.newReplica()}
	}
	e.rem.model.SetParameters(params)
	return e.rem
}
