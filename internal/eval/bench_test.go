package eval

import (
	"math/rand"
	"testing"

	"hadfl/internal/dataset"
	"hadfl/internal/nn"
	"hadfl/internal/tensor"
)

// The eval trajectory, snapshotted by `make bench-eval` into
// BENCH_eval.json: the engine path versus the legacy path it replaced
// (SetParameters + one forward for the loss + a second full forward
// inside Model.Accuracy, with fresh loss-gradient and prediction
// allocations per call). Compare evals/sec and allocs/op between the
// two to read the before/after.

const (
	benchSamples  = 1000
	benchFeatures = 16
	benchClasses  = 5
)

func benchData() *dataset.Dataset {
	return dataset.Synthetic(dataset.SyntheticConfig{
		Samples: benchSamples, Features: benchFeatures, Classes: benchClasses,
		ModesPerClass: 2, NoiseStd: 0.4, Seed: 17,
	})
}

func benchModel() *nn.Model {
	return nn.NewResMLP(rand.New(rand.NewSource(9)), benchFeatures, 64, 2, benchClasses)
}

func benchmarkEngine(b *testing.B, parallelism int) {
	prev := tensor.Parallelism()
	tensor.SetParallelism(parallelism)
	defer tensor.SetParallelism(prev)

	data := benchData()
	e, err := New(Config{Data: data, Model: benchModel(), NewReplica: benchModel, BatchSize: 256})
	if err != nil {
		b.Fatal(err)
	}
	params := benchModel().Parameters()
	var res Result
	e.EvaluateInto(&res, params) // warm buffers and replicas
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.EvaluateInto(&res, params)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "evals/sec")
}

func BenchmarkEvaluateEngine(b *testing.B)         { benchmarkEngine(b, 1) }
func BenchmarkEvaluateEngineParallel(b *testing.B) { benchmarkEngine(b, 4) }

// BenchmarkEvaluateLegacyDoubleForward reproduces the pre-engine
// evaluation path for the before/after record: the whole test set as
// one giant batch, a gradient-allocating loss pass, then a second full
// forward for accuracy.
func BenchmarkEvaluateLegacyDoubleForward(b *testing.B) {
	prev := tensor.Parallelism()
	tensor.SetParallelism(1)
	defer tensor.SetParallelism(prev)

	data := benchData()
	m := benchModel()
	params := benchModel().Parameters()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.SetParameters(params)
		logits := m.Forward(data.X, false)
		loss, _ := nn.SoftmaxCrossEntropy(logits, data.Y)
		acc := m.Accuracy(data.X, data.Y)
		_, _ = loss, acc
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "evals/sec")
}
