package eval

import (
	"math"
	"math/rand"
	"testing"

	"hadfl/internal/dataset"
	"hadfl/internal/nn"
	"hadfl/internal/tensor"
)

const (
	testFeatures = 16
	testClasses  = 5
)

func testData(t *testing.T, samples int) *dataset.Dataset {
	t.Helper()
	full := dataset.Synthetic(dataset.SyntheticConfig{
		Samples: samples, Features: testFeatures, Classes: testClasses,
		ModesPerClass: 2, NoiseStd: 0.4, Seed: 11,
	})
	return full
}

func testModel() *nn.Model {
	return nn.NewResMLP(rand.New(rand.NewSource(3)), testFeatures, 24, 1, testClasses)
}

func testEvaluator(t *testing.T, data *dataset.Dataset, batch int) *Evaluator {
	t.Helper()
	e, err := New(Config{Data: data, Model: testModel(), NewReplica: testModel, BatchSize: batch})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func testParams() []float64 {
	return testModel().Parameters()
}

// The engine must agree with the naive whole-set reference: one giant
// forward, mean cross-entropy, argmax accuracy.
func TestEvaluateMatchesReference(t *testing.T) {
	data := testData(t, 150)
	params := testParams()

	ref := testModel()
	ref.SetParameters(params)
	logits := ref.Forward(data.X, false)
	refLoss, _ := nn.SoftmaxCrossEntropy(logits, data.Y)
	refAcc := nn.AccuracyFromLogits(logits, data.Y)

	e := testEvaluator(t, data, 32) // 4 full batches + remainder of 22
	var res Result
	e.EvaluateInto(&res, params)
	if math.Float64bits(res.Accuracy) != math.Float64bits(refAcc) {
		t.Fatalf("accuracy %v, reference %v", res.Accuracy, refAcc)
	}
	if math.Abs(res.Loss-refLoss) > 1e-12*math.Max(1, math.Abs(refLoss)) {
		t.Fatalf("loss %v, reference %v", res.Loss, refLoss)
	}
	if res.Samples != 150 || res.Batches != 5 {
		t.Fatalf("res = %+v, want 150 samples in 5 batches", res)
	}
}

// Bit-determinism across batch sizes: every kernel under Forward
// computes output rows independently, so how the test set is batched
// must not change a single bit of loss or accuracy.
func TestEvaluateDeterministicAcrossBatchSizes(t *testing.T) {
	data := testData(t, 130)
	params := testParams()
	var wantLoss, wantAcc uint64
	for i, batch := range []int{7, 32, 64, 130, 999} {
		e := testEvaluator(t, data, batch)
		loss, acc := e.Evaluate(params)
		if i == 0 {
			wantLoss, wantAcc = math.Float64bits(loss), math.Float64bits(acc)
			continue
		}
		if math.Float64bits(loss) != wantLoss || math.Float64bits(acc) != wantAcc {
			t.Fatalf("batch %d: (%v, %v) differs from batch 7's bits", batch, loss, acc)
		}
	}
}

// Bit-determinism across parallelism levels: sharding batches over the
// tensor worker pool is a throughput knob, never a numerics knob.
func TestEvaluateDeterministicAcrossParallelism(t *testing.T) {
	prev := tensor.Parallelism()
	defer tensor.SetParallelism(prev)

	data := testData(t, 200)
	params := testParams()
	e := testEvaluator(t, data, 16)
	var wantLoss, wantAcc uint64
	for i, p := range []int{1, 2, 8} {
		tensor.SetParallelism(p)
		loss, acc := e.Evaluate(params)
		if i == 0 {
			wantLoss, wantAcc = math.Float64bits(loss), math.Float64bits(acc)
			continue
		}
		if math.Float64bits(loss) != wantLoss || math.Float64bits(acc) != wantAcc {
			t.Fatalf("parallelism %d: (%v, %v) differs from serial bits", p, loss, acc)
		}
	}
}

// A wide model pushes the per-batch matmuls over the kernel
// parallelization threshold, so batch-level replica goroutines and the
// nested kernel-pool dispatches run at the same time — the regression
// case for shard bodies that must never block inside the kernel pool.
func TestEvaluateParallelWithParallelKernels(t *testing.T) {
	prev := tensor.Parallelism()
	defer tensor.SetParallelism(prev)

	data := testData(t, 256)
	wide := func() *nn.Model {
		return nn.NewResMLP(rand.New(rand.NewSource(5)), testFeatures, 128, 2, testClasses)
	}
	e, err := New(Config{Data: data, Model: wide(), NewReplica: wide, BatchSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	params := wide().Parameters()
	tensor.SetParallelism(1)
	wantLoss, wantAcc := e.Evaluate(params)
	tensor.SetParallelism(4)
	loss, acc := e.Evaluate(params)
	tensor.SetParallelism(1)
	if math.Float64bits(loss) != math.Float64bits(wantLoss) ||
		math.Float64bits(acc) != math.Float64bits(wantAcc) {
		t.Fatalf("parallel kernels + parallel batches: (%v, %v), serial (%v, %v)",
			loss, acc, wantLoss, wantAcc)
	}
}

// Steady-state evaluations allocate nothing on the serial kernel path,
// including when the dataset size is not a multiple of the batch size
// (the remainder batch runs on its own replica).
func TestEvaluateZeroAllocSteadyState(t *testing.T) {
	prev := tensor.Parallelism()
	tensor.SetParallelism(1)
	defer tensor.SetParallelism(prev)

	data := testData(t, 100)
	params := testParams()
	e := testEvaluator(t, data, 32) // 3 full batches + remainder of 4
	var res Result
	for i := 0; i < 3; i++ { // warm up replica and layer buffers
		e.EvaluateInto(&res, params)
	}
	if allocs := testing.AllocsPerRun(10, func() { e.EvaluateInto(&res, params) }); allocs != 0 {
		t.Fatalf("steady-state evaluation allocates %.1f times per call, want 0", allocs)
	}
}

// Stats accumulate across evaluations.
func TestEvaluatorStats(t *testing.T) {
	data := testData(t, 96)
	e := testEvaluator(t, data, 32) // exactly 3 batches
	params := testParams()
	e.Evaluate(params)
	e.Evaluate(params)
	st := e.Stats()
	if st.Evals != 2 || st.Batches != 6 {
		t.Fatalf("stats %+v, want 2 evals / 6 batches", st)
	}
	if st.Seconds < 0 {
		t.Fatalf("negative seconds %v", st.Seconds)
	}
}

// Config validation: empty data and missing model are rejected.
func TestNewValidates(t *testing.T) {
	if _, err := New(Config{Model: testModel()}); err == nil {
		t.Fatal("New accepted nil dataset")
	}
	if _, err := New(Config{Data: testData(t, 10)}); err == nil {
		t.Fatal("New accepted nil model")
	}
}
