// Package predict implements HADFL's runtime parameter-version
// prediction (paper §III-B): Brown's double exponential smoothing over
// the observed per-round parameter versions of each device, used by the
// strategy generator to forecast versions for the next round.
package predict

import (
	"fmt"
	"math"
)

// Brown is Brown's double-exponential-smoothing forecaster, the exact
// recurrence of the paper's Eq. 7:
//
//	v¹ⱼ = α·vⱼ + (1−α)·v¹ⱼ₋₁
//	v²ⱼ = α·v¹ⱼ + (1−α)·v²ⱼ₋₁
//	aⱼ  = 2·v¹ⱼ − v²ⱼ
//	bⱼ  = α/(1−α)·(v¹ⱼ − v²ⱼ)
//	v̂ⱼ₊ₘ = aⱼ + bⱼ·m
//
// α ∈ (0,1) weights recent observations; larger α tracks changes faster.
type Brown struct {
	Alpha  float64
	s1, s2 float64
	n      int
}

// NewBrown returns a forecaster with the given smoothing factor. It
// panics unless 0 < alpha < 1 (the open interval the paper requires;
// alpha=1 would divide by zero in the trend term).
func NewBrown(alpha float64) *Brown {
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("predict: alpha %v outside (0,1)", alpha))
	}
	return &Brown{Alpha: alpha}
}

// Observe feeds the actual parameter version measured in the latest
// synchronization round. The first observation initializes both smoothing
// registers (the standard bootstrap for Brown's method).
func (b *Brown) Observe(v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		panic(fmt.Sprintf("predict: invalid observation %v", v))
	}
	if b.n == 0 {
		b.s1, b.s2 = v, v
	} else {
		b.s1 = b.Alpha*v + (1-b.Alpha)*b.s1
		b.s2 = b.Alpha*b.s1 + (1-b.Alpha)*b.s2
	}
	b.n++
}

// Count returns the number of observations so far.
func (b *Brown) Count() int { return b.n }

// Forecast predicts the version m rounds ahead (m ≥ 0; m=0 returns the
// smoothed level). It panics if no observation has been made.
func (b *Brown) Forecast(m int) float64 {
	if b.n == 0 {
		panic("predict: Forecast before any observation")
	}
	a := 2*b.s1 - b.s2
	slope := b.Alpha / (1 - b.Alpha) * (b.s1 - b.s2)
	return a + slope*float64(m)
}

// ExpectedVersion computes the warm-up–based initial version estimate of
// the paper's Eq. 6. The paper writes v̂ᵢ = Tsync·Tᵢ/Ewarmup; read
// dimensionally, the intended quantity is the number of local epochs
// device i completes within one synchronization period:
//
//	v̂ᵢ = syncPeriod / (Tᵢ / Ewarmup)
//
// where Tᵢ is the device's total warm-up calculation time over Ewarmup
// epochs, so Tᵢ/Ewarmup is its per-epoch time. This reading — documented
// as a deviation in DESIGN.md — makes faster devices (smaller Tᵢ) expect
// larger versions, matching the paper's use of the estimate.
func ExpectedVersion(syncPeriod, warmupTime float64, warmupEpochs int) float64 {
	if syncPeriod <= 0 || warmupTime <= 0 || warmupEpochs <= 0 {
		panic(fmt.Sprintf("predict: invalid ExpectedVersion args %v %v %d", syncPeriod, warmupTime, warmupEpochs))
	}
	perEpoch := warmupTime / float64(warmupEpochs)
	return syncPeriod / perEpoch
}

// Tracker maintains one Brown forecaster per device and answers
// next-round forecasts for all of them, the role of the paper's runtime
// supervisor prediction step.
type Tracker struct {
	Alpha    float64
	byDevice map[int]*Brown
}

// NewTracker creates an empty tracker with the given smoothing factor.
func NewTracker(alpha float64) *Tracker {
	if alpha <= 0 || alpha >= 1 {
		panic(fmt.Sprintf("predict: alpha %v outside (0,1)", alpha))
	}
	return &Tracker{Alpha: alpha, byDevice: make(map[int]*Brown)}
}

// Observe records device dev's actual version for the latest round.
func (t *Tracker) Observe(dev int, version float64) {
	b, ok := t.byDevice[dev]
	if !ok {
		b = NewBrown(t.Alpha)
		t.byDevice[dev] = b
	}
	b.Observe(version)
}

// Seed installs a prior estimate (e.g. from Eq. 6's warm-up measurement)
// for a device that has not reported yet. It is a no-op if the device
// already has observations.
func (t *Tracker) Seed(dev int, version float64) {
	if _, ok := t.byDevice[dev]; ok {
		return
	}
	b := NewBrown(t.Alpha)
	b.Observe(version)
	t.byDevice[dev] = b
}

// Forecast predicts device dev's version m rounds ahead. ok is false if
// the device has never been observed or seeded.
func (t *Tracker) Forecast(dev, m int) (v float64, ok bool) {
	b, found := t.byDevice[dev]
	if !found {
		return 0, false
	}
	return b.Forecast(m), true
}

// ForecastAll returns next-round (m=1) forecasts for the given devices,
// skipping unknown ones.
func (t *Tracker) ForecastAll(devs []int) map[int]float64 {
	out := make(map[int]float64, len(devs))
	for _, d := range devs {
		if v, ok := t.Forecast(d, 1); ok {
			out[d] = v
		}
	}
	return out
}

// Forget drops a device's history (e.g. after it leaves the federation).
func (t *Tracker) Forget(dev int) { delete(t.byDevice, dev) }

// Known returns the number of tracked devices.
func (t *Tracker) Known() int { return len(t.byDevice) }
