package predict

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewBrownAlphaValidation(t *testing.T) {
	for _, a := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("alpha=%v did not panic", a)
				}
			}()
			NewBrown(a)
		}()
	}
}

func TestBrownConstantSeries(t *testing.T) {
	b := NewBrown(0.5)
	for i := 0; i < 20; i++ {
		b.Observe(7)
	}
	for m := 0; m < 5; m++ {
		if got := b.Forecast(m); math.Abs(got-7) > 1e-9 {
			t.Fatalf("Forecast(%d) = %v on constant series", m, got)
		}
	}
}

func TestBrownLinearTrendConverges(t *testing.T) {
	// Series v_j = 3 + 2j: after enough observations Brown's method
	// recovers slope 2 and forecasts exactly.
	b := NewBrown(0.4)
	var last float64
	for j := 0; j < 200; j++ {
		last = 3 + 2*float64(j)
		b.Observe(last)
	}
	got := b.Forecast(1)
	want := last + 2
	if math.Abs(got-want) > 0.05 {
		t.Fatalf("Forecast(1) = %v, want ≈%v", got, want)
	}
	got5 := b.Forecast(5)
	if math.Abs(got5-(last+10)) > 0.25 {
		t.Fatalf("Forecast(5) = %v, want ≈%v", got5, last+10)
	}
}

func TestBrownTracksLevelShift(t *testing.T) {
	// Big alpha adapts fast to a level shift; small alpha lags.
	fast, slow := NewBrown(0.9), NewBrown(0.1)
	for i := 0; i < 10; i++ {
		fast.Observe(10)
		slow.Observe(10)
	}
	for i := 0; i < 5; i++ {
		fast.Observe(50)
		slow.Observe(50)
	}
	fe := math.Abs(fast.Forecast(0) - 50)
	se := math.Abs(slow.Forecast(0) - 50)
	if fe >= se {
		t.Fatalf("alpha=0.9 error %v should be below alpha=0.1 error %v", fe, se)
	}
}

func TestForecastBeforeObservePanics(t *testing.T) {
	b := NewBrown(0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("Forecast on empty history did not panic")
		}
	}()
	b.Forecast(1)
}

func TestObserveRejectsNaN(t *testing.T) {
	b := NewBrown(0.5)
	defer func() {
		if recover() == nil {
			t.Fatal("NaN observation did not panic")
		}
	}()
	b.Observe(math.NaN())
}

func TestExpectedVersion(t *testing.T) {
	// Device with 2s/epoch (warmupTime=4 over 2 epochs) and a 10s sync
	// period should reach version 5.
	if got := ExpectedVersion(10, 4, 2); math.Abs(got-5) > 1e-12 {
		t.Fatalf("ExpectedVersion = %v, want 5", got)
	}
	// Faster device (1s/epoch) reaches a higher version.
	fast := ExpectedVersion(10, 2, 2)
	slow := ExpectedVersion(10, 8, 2)
	if fast <= slow {
		t.Fatalf("faster device version %v must exceed slower %v", fast, slow)
	}
}

func TestExpectedVersionValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid ExpectedVersion args did not panic")
		}
	}()
	ExpectedVersion(0, 1, 1)
}

func TestTrackerSeedAndObserve(t *testing.T) {
	tr := NewTracker(0.5)
	tr.Seed(1, 10)
	tr.Seed(1, 999) // no-op: already seeded
	if v, ok := tr.Forecast(1, 0); !ok || math.Abs(v-10) > 1e-9 {
		t.Fatalf("Forecast after seed = %v, %v", v, ok)
	}
	if _, ok := tr.Forecast(2, 1); ok {
		t.Fatal("unknown device must not forecast")
	}
	tr.Observe(2, 4)
	tr.Observe(2, 6)
	if v, ok := tr.Forecast(2, 1); !ok || v <= 4 {
		t.Fatalf("device 2 forecast %v, %v", v, ok)
	}
	if tr.Known() != 2 {
		t.Fatalf("Known = %d", tr.Known())
	}
	all := tr.ForecastAll([]int{1, 2, 3})
	if len(all) != 2 {
		t.Fatalf("ForecastAll = %v", all)
	}
	tr.Forget(1)
	if tr.Known() != 1 {
		t.Fatalf("Known after Forget = %d", tr.Known())
	}
}

// Property: forecasts of a constant series equal the constant, for any
// valid alpha and any horizon.
func TestPropertyConstantSeriesFixedPoint(t *testing.T) {
	f := func(seed int64, aRaw, mRaw uint8) bool {
		alpha := (float64(aRaw%98) + 1) / 100 // 0.01..0.99
		m := int(mRaw % 10)
		rng := rand.New(rand.NewSource(seed))
		c := rng.Float64()*100 - 50
		b := NewBrown(alpha)
		for i := 0; i < 30; i++ {
			b.Observe(c)
		}
		return math.Abs(b.Forecast(m)-c) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Forecast is affine in the horizon m: the increments
// Forecast(m+1)−Forecast(m) are constant.
func TestPropertyForecastAffineInHorizon(t *testing.T) {
	f := func(seed int64, aRaw uint8) bool {
		alpha := (float64(aRaw%98) + 1) / 100
		rng := rand.New(rand.NewSource(seed))
		b := NewBrown(alpha)
		for i := 0; i < 15; i++ {
			b.Observe(rng.Float64() * 20)
		}
		d1 := b.Forecast(1) - b.Forecast(0)
		d2 := b.Forecast(2) - b.Forecast(1)
		d3 := b.Forecast(7) - b.Forecast(6)
		return math.Abs(d1-d2) < 1e-9 && math.Abs(d1-d3) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
