package hadfl_test

import (
	"fmt"

	"hadfl"
)

// The quickest possible HADFL run: four simulated devices with computing
// power 4:2:2:1, a short epoch budget, fixed seed.
func ExampleRun() {
	res, err := hadfl.Run(hadfl.Options{
		Powers:       []float64{4, 2, 2, 1},
		TargetEpochs: 8,
		Seed:         1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("scheme=%s rounds=%d server-bytes=%d\n",
		res.Scheme, res.Rounds, res.ServerBytes)
	// Output: scheme=hadfl rounds=4 server-bytes=0
}

// Comparing every registered scheme on one cluster.
func ExampleCompare() {
	results, err := hadfl.Compare(hadfl.Options{
		Powers:       []float64{4, 2, 2, 1},
		TargetEpochs: 8,
		Seed:         1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(len(results), "schemes compared")
	// Output: 5 schemes compared
}
