package hadfl

import (
	"runtime"
	"testing"

	"hadfl/internal/tensor"
)

// runAllocBudget pins the whole-run allocation ceiling on the serial
// kernel path. A complete run — cluster construction, warm-up,
// training rounds, per-round evaluation — must stay under this many
// heap allocations for every registered scheme. Before the evaluation
// engine and the parameter-gather plumbing, the evaluation path alone
// cost ~50k allocations per run; the measured steady state is now
// ~1.4k (dominated by cluster construction), so this bound holds
// roughly 3× headroom without tolerating a regression back to
// per-round vector churn.
const runAllocBudget = 5000

// TestRunAllocationBudget runs every registered scheme twice (the
// first run warms package-level state) and asserts the second stays
// under the budget. Parallelism is pinned to 1: the concurrent paths
// spend a few coordination allocations per round by design, and the
// guarantee — like the per-step guards in internal/nn — covers the
// serial path.
func TestRunAllocationBudget(t *testing.T) {
	prev := tensor.Parallelism()
	tensor.SetParallelism(1)
	defer tensor.SetParallelism(prev)

	opts := Options{Powers: []float64{4, 2, 2, 1}, TargetEpochs: 3, Seed: 7, Parallelism: 1}
	for _, scheme := range Schemes() {
		t.Run(scheme, func(t *testing.T) {
			if _, err := RunScheme(scheme, opts); err != nil {
				t.Fatal(err)
			}
			var m0, m1 runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&m0)
			if _, err := RunScheme(scheme, opts); err != nil {
				t.Fatal(err)
			}
			runtime.ReadMemStats(&m1)
			if allocs := m1.Mallocs - m0.Mallocs; allocs > runAllocBudget {
				t.Fatalf("%s run allocated %d times, budget %d", scheme, allocs, runAllocBudget)
			}
		})
	}
}
