// Heterogeneous-cluster comparison: HADFL versus every other
// registered scheme (Decentralized-FedAvg, PyTorch-style distributed
// training, staleness-weighted async-FL) on the paper's two
// heterogeneity distributions — a miniature of the paper's Table I.
//
// Run with:
//
//	go run ./examples/heterogeneous
package main

import (
	"fmt"
	"log"
	"os"

	"hadfl"
	"hadfl/internal/metrics"
)

func main() {
	table := &metrics.Table{Header: []string{
		"het", "scheme", "max-acc", "time-to-max", "hadfl-speedup",
	}}
	for _, powers := range [][]float64{{3, 3, 1, 1}, {4, 2, 2, 1}} {
		opts := hadfl.Options{Powers: powers, TargetEpochs: 30, Seed: 1}
		results, err := hadfl.Compare(opts)
		if err != nil {
			log.Fatal(err)
		}
		h := results[hadfl.SchemeHADFL]
		label := fmt.Sprintf("%v", powers)
		// Every registered scheme — a newly registered one shows up in
		// this table without an edit here.
		for _, scheme := range hadfl.Schemes() {
			r := results[scheme]
			speedup := r.Time / h.Time
			table.AddRow(label, scheme,
				fmt.Sprintf("%.1f%%", 100*r.Accuracy),
				fmt.Sprintf("%.1f s", r.Time),
				fmt.Sprintf("%.2fx", speedup))
		}
	}
	fmt.Println("Time to maximum test accuracy (virtual seconds, lower is better)")
	fmt.Println()
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nhadfl-speedup = scheme's time ÷ HADFL's time; >1 means HADFL is faster.")
}
