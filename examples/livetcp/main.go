// Live TCP federation in one process: a coordinator and four workers
// with computing power 4:2:2:1 exchange real messages over localhost
// sockets. Heterogeneity is emulated with per-step sleeps, exactly the
// paper's methodology; model parameters travel strictly peer-to-peer
// through the fault-tolerant gossip ring, never through the
// coordinator.
//
// Run with:
//
//	go run ./examples/livetcp
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"
	"time"

	"hadfl/internal/dataset"
	"hadfl/internal/nn"
	"hadfl/internal/p2p"
	"hadfl/internal/runtime"
	"hadfl/internal/strategy"
)

const (
	coordID = 1000
	k       = 4
	rounds  = 5
)

func main() {
	powers := []float64{4, 2, 2, 1}

	// Open all sockets and introduce everyone to everyone.
	coordNode, err := p2p.ListenTCP(coordID, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer coordNode.Close()
	nodes := make([]*p2p.TCPNode, k)
	for i := range nodes {
		n, err := p2p.ListenTCP(i, "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		defer n.Close()
		nodes[i] = n
	}
	for i := range nodes {
		nodes[i].AddPeer(coordID, coordNode.Addr())
		coordNode.AddPeer(i, nodes[i].Addr())
		for j := range nodes {
			if i != j {
				nodes[i].AddPeer(j, nodes[j].Addr())
			}
		}
		fmt.Printf("worker %d (power %.0f) on %s\n", i, powers[i], nodes[i].Addr())
	}
	fmt.Printf("coordinator on %s\n\n", coordNode.Addr())

	// Shared task: same dataset and initialization everywhere, own shard
	// per worker.
	full := dataset.Synthetic(dataset.SyntheticConfig{
		Samples: 2000, Features: 24, Classes: 6, ModesPerClass: 2, NoiseStd: 0.5, Seed: 1,
	})
	train, test := full.Split(1600)
	parts := dataset.PartitionIID(train, k, rand.New(rand.NewSource(2)))
	ref := nn.NewMLP(rand.New(rand.NewSource(3)), 24, []int{24}, 6)
	init := ref.Parameters()

	workers := make([]*runtime.Worker, k)
	for i := 0; i < k; i++ {
		m := nn.NewMLP(rand.New(rand.NewSource(4+int64(i))), 24, []int{24}, 6)
		m.SetParameters(init)
		w, err := runtime.NewWorker(runtime.WorkerConfig{
			ID: i, CoordID: coordID, Power: powers[i],
			SleepUnit: 4 * time.Millisecond,
			Model:     m,
			Opt:       nn.NewSGD(0.1, 0.9, 0),
			Loader:    dataset.NewLoader(parts[i], 32, rand.New(rand.NewSource(10+int64(i)))),
			RingOpt: p2p.RingOptions{
				DataTimeout:      2 * time.Second,
				HandshakeTimeout: time.Second,
				MaxReforms:       3,
			},
			ConfigTimeout: 30 * time.Second,
			BcastTimeout:  5 * time.Second,
		}, nodes[i])
		if err != nil {
			log.Fatal(err)
		}
		workers[i] = w
	}

	lc, err := runtime.NewLiveCoordinator(runtime.CoordinatorConfig{
		ID: coordID, Workers: []int{0, 1, 2, 3},
		Strategy:      strategy.Config{Tsync: 1, Np: 2, Quantum: 0.005, MaxFactor: 4},
		Alpha:         0.5,
		Rounds:        rounds,
		ReportTimeout: 20 * time.Second,
		Seed:          1,
	}, coordNode)
	if err != nil {
		log.Fatal(err)
	}
	lc.OnRound = func(s runtime.RoundStatus) {
		var steps []string
		var ids []int
		for id := range s.Plan.LocalSteps {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			steps = append(steps, fmt.Sprintf("%d:%d", id, s.Plan.LocalSteps[id]))
		}
		fmt.Printf("round %d  ring=%v  local-steps=%v  mean-loss=%.3f\n",
			s.Round, s.Plan.Ring, steps, s.MeanLoss)
	}

	var wg sync.WaitGroup
	for i, w := range workers {
		i, w := i, w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := w.Run(); err != nil {
				log.Printf("worker %d: %v", i, err)
			}
		}()
	}
	start := time.Now()
	if err := lc.Run(); err != nil {
		log.Fatal(err)
	}
	wg.Wait()

	fmt.Printf("\n%d rounds over TCP in %.1fs wall time\n", rounds, time.Since(start).Seconds())
	for i, w := range workers {
		fmt.Printf("worker %d: version %d, test accuracy %.1f%%\n",
			i, w.Version(), 100*w.Model().Accuracy(test.X, test.Y))
	}
	fmt.Println("\nnote how the power-4 worker's version (local steps) outpaces the power-1 worker —")
	fmt.Println("that is the heterogeneity-aware local-step assignment at work.")
}
