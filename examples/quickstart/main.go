// Quickstart: train a model with HADFL on a simulated heterogeneous
// 4-device cluster and print the headline numbers.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"hadfl"
)

func main() {
	// A cluster whose devices have computing power 4:2:2:1 — the more
	// skewed of the two distributions evaluated in the paper.
	res, err := hadfl.Run(hadfl.Options{
		Powers:       []float64{4, 2, 2, 1},
		Model:        "resnet", // residual workload; try "vgg" for the plain one
		TargetEpochs: 30,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("HADFL quickstart")
	fmt.Println("================")
	fmt.Printf("max test accuracy : %.1f%%\n", 100*res.Accuracy)
	fmt.Printf("virtual time      : %.1f s to reach it\n", res.Time)
	fmt.Printf("sync rounds       : %d\n", res.Rounds)
	fmt.Printf("device traffic    : %.2f MB total\n", float64(res.DeviceBytes)/1e6)
	fmt.Printf("server traffic    : %d bytes (decentralized: the coordinator only does control)\n", res.ServerBytes)

	fmt.Println("\ntraining curve (every 5th round):")
	for i, p := range res.Series.Points {
		if i%5 != 0 {
			continue
		}
		fmt.Printf("  epoch %6.1f  t=%7.1fs  loss %.3f  acc %.1f%%\n",
			p.Epoch, p.Time, p.Loss, 100*p.Accuracy)
	}
}
