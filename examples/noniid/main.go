// Non-IID data demo: HADFL under IID and Dirichlet(α) partitions.
// Smaller α means each device sees a more skewed label distribution —
// the "data distribution" axis the paper lists as future work, which
// this reproduction implements.
//
// Run with:
//
//	go run ./examples/noniid
package main

import (
	"fmt"
	"log"
	"os"

	"hadfl"
	"hadfl/internal/metrics"
)

func main() {
	table := &metrics.Table{Header: []string{"partition", "max-acc", "time-to-max", "rounds"}}
	cases := []struct {
		label string
		alpha float64
	}{
		{"IID", 0},
		{"Dirichlet α=1.0", 1.0},
		{"Dirichlet α=0.3", 0.3},
		{"Dirichlet α=0.1", 0.1},
	}
	for _, c := range cases {
		res, err := hadfl.Run(hadfl.Options{
			Powers:       []float64{4, 2, 2, 1},
			TargetEpochs: 30,
			NonIIDAlpha:  c.alpha,
			Seed:         1,
		})
		if err != nil {
			log.Fatal(err)
		}
		table.AddRow(c.label,
			fmt.Sprintf("%.1f%%", 100*res.Accuracy),
			fmt.Sprintf("%.1f s", res.Time),
			fmt.Sprintf("%d", res.Rounds))
	}
	fmt.Println("HADFL under increasingly non-IID data (4 devices, power 4:2:2:1)")
	fmt.Println()
	if err := table.Render(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSkewed shards slow convergence and can lower the ceiling —")
	fmt.Println("partial aggregation only mixes a subset of shards per round.")
}
