// Fault tolerance demo (paper §III-D), in two acts:
//
//  1. Protocol level: five in-process peers run the gossip ring
//     all-reduce while one of them is killed; the survivors detect the
//     silence, handshake, warn the upstream, and reform the ring.
//  2. System level: a full HADFL training run in which a device crashes
//     mid-training — training continues and still converges.
//
// Run with:
//
//	go run ./examples/faulttolerance
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"hadfl"
	"hadfl/internal/p2p"
)

func main() {
	ringDemo()
	trainingDemo()
}

func ringDemo() {
	fmt.Println("Act 1: ring all-reduce with a dead member")
	fmt.Println("-----------------------------------------")
	hub := p2p.NewChanHub()
	ring := []int{0, 1, 2, 3, 4}
	hub.Kill(2) // device 2 "falls disconnected during work"
	fmt.Println("ring:", ring, "— killing device 2 before the round")

	opt := p2p.RingOptions{
		DataTimeout:      150 * time.Millisecond,
		HandshakeTimeout: 80 * time.Millisecond,
		MaxReforms:       3,
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, id := range []int{0, 1, 3, 4} {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			vec := []float64{float64(id + 1)} // contribute id+1
			sum, survivors, err := p2p.RingAllReduce(hub.Node(id), ring, 1, vec, opt)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				fmt.Printf("  device %d: error: %v\n", id, err)
				return
			}
			fmt.Printf("  device %d: sum=%v survivors=%v\n", id, sum, survivors)
		}()
	}
	wg.Wait()
	fmt.Println("  (sum 10 = 1+2+4+5: device 2's contribution was bypassed)")
	fmt.Println()
}

func trainingDemo() {
	fmt.Println("Act 2: HADFL training with a mid-run crash")
	fmt.Println("------------------------------------------")
	healthy, err := hadfl.Run(hadfl.Options{
		Powers: []float64{4, 2, 2, 1}, TargetEpochs: 25, Seed: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	crashed, err := hadfl.Run(hadfl.Options{
		Powers: []float64{4, 2, 2, 1}, TargetEpochs: 25, Seed: 3,
		FailAt: map[int]float64{1: 60}, // device 1 dies at t=60s
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  healthy cluster : %.1f%% accuracy (t=%.1fs, %d rounds)\n",
		100*healthy.Accuracy, healthy.Time, healthy.Rounds)
	fmt.Printf("  device 1 @ t=60 : %.1f%% accuracy (t=%.1fs, %d rounds)\n",
		100*crashed.Accuracy, crashed.Time, crashed.Rounds)
	fmt.Println("  training continued on the surviving devices.")
}
