// Command serve demonstrates the hadfl-serve experiment service from
// a client's point of view: it starts the service in-process on a
// loopback port, submits the same training run twice concurrently
// (watch the two requests coalesce onto one job), follows per-round
// progress over SSE, and finally shows the instant cache hit a
// repeated request gets.
//
// Against a separately-started server the same traffic is plain curl:
//
//	hadfl-serve -addr :8080 &
//	curl -s :8080/runs -d '{"scheme":"hadfl","options":{"powers":[4,2,2,1],"targetEpochs":8,"seed":1}}'
//	curl -N :8080/runs/<id>/events
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"time"

	"hadfl/internal/serve"
)

const runBody = `{"scheme":"hadfl","options":{"powers":[4,2,2,1],"targetEpochs":8,"seed":1}}`

func main() {
	log.SetFlags(0)
	svc, err := serve.New(serve.Config{Workers: 2, JobTimeout: 2 * time.Minute})
	if err != nil {
		log.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Close(context.Background())
	fmt.Printf("service up at %s\n\n", ts.URL)

	// Two identical submissions race; the service runs the job once.
	var wg sync.WaitGroup
	ids := make([]string, 2)
	codes := make([]int, 2)
	for i := range ids {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			codes[i], ids[i] = submit(ts.URL)
		}()
	}
	wg.Wait()
	fmt.Printf("request A: HTTP %d  job %.12s…\n", codes[0], ids[0])
	fmt.Printf("request B: HTTP %d  job %.12s…  (coalesced: same job)\n\n", codes[1], ids[1])

	// Stream per-round progress over SSE until the job finishes.
	resp, err := http.Get(ts.URL + "/runs/" + ids[0] + "/events")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e serve.Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			log.Fatal(err)
		}
		switch e.Type {
		case "state":
			fmt.Printf("state → %s\n", e.State)
		case "round":
			fmt.Printf("  round %2d  t=%7.1fs  loss=%.4f  acc=%5.1f%%\n",
				e.Round.Round, e.Round.Time, e.Round.Loss, 100*e.Round.Accuracy)
		}
	}
	if err := scanner.Err(); err != nil {
		log.Fatal(err)
	}

	// A repeat of the same request is a pure cache hit: HTTP 200 with
	// the finished result, no retraining.
	start := time.Now()
	code, id := submit(ts.URL)
	fmt.Printf("\nrepeat request: HTTP %d on job %.12s… in %s (cache hit)\n", code, id, time.Since(start).Round(time.Microsecond))

	var stats struct {
		Metrics struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	sr, err := http.Get(ts.URL + "/stats")
	if err != nil {
		log.Fatal(err)
	}
	defer sr.Body.Close()
	if err := json.NewDecoder(sr.Body).Decode(&stats); err != nil {
		log.Fatal(err)
	}
	c := stats.Metrics.Counters
	fmt.Printf("stats: %d submitted / %d run / %d cache hits\n",
		c["cache_hits_total"]+c["cache_misses_total"], c["runs_completed_total"], c["cache_hits_total"])
}

func submit(base string) (int, string) {
	resp, err := http.Post(base+"/runs", "application/json", strings.NewReader(runBody))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var st struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		log.Fatal(err)
	}
	return resp.StatusCode, st.ID
}
