package hadfl

// Integration tests crossing module boundaries: the live message-level
// HADFL federation over real TCP sockets (coordinator + 4 heterogeneous
// workers in one process), and consistency checks between the public
// API and the underlying experiment runners.

import (
	"math/rand"
	"sync"
	"testing"
	"time"

	"hadfl/internal/dataset"
	"hadfl/internal/nn"
	"hadfl/internal/p2p"
	"hadfl/internal/runtime"
	"hadfl/internal/strategy"
)

func TestIntegrationLiveTCPFederation(t *testing.T) {
	if testing.Short() {
		t.Skip("TCP federation in -short mode")
	}
	const (
		coordID = 1000
		k       = 4
		rounds  = 3
	)
	powers := []float64{4, 2, 2, 1}

	// Sockets.
	coordNode, err := p2p.ListenTCP(coordID, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coordNode.Close()
	workerNodes := make([]*p2p.TCPNode, k)
	for i := 0; i < k; i++ {
		n, err := p2p.ListenTCP(i, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		workerNodes[i] = n
	}
	for i := 0; i < k; i++ {
		workerNodes[i].AddPeer(coordID, coordNode.Addr())
		coordNode.AddPeer(i, workerNodes[i].Addr())
		for j := 0; j < k; j++ {
			if i != j {
				workerNodes[i].AddPeer(j, workerNodes[j].Addr())
			}
		}
	}

	// Shared data and init.
	full := dataset.Synthetic(dataset.SyntheticConfig{
		Samples: 800, Features: 12, Classes: 4, ModesPerClass: 2, NoiseStd: 0.4, Seed: 50,
	})
	train, test := full.Split(640)
	parts := dataset.PartitionIID(train, k, rand.New(rand.NewSource(51)))
	ref := nn.NewMLP(rand.New(rand.NewSource(52)), 12, []int{16}, 4)
	init := ref.Parameters()

	workers := make([]*runtime.Worker, k)
	for i := 0; i < k; i++ {
		m := nn.NewMLP(rand.New(rand.NewSource(53+int64(i))), 12, []int{16}, 4)
		m.SetParameters(init)
		w, err := runtime.NewWorker(runtime.WorkerConfig{
			ID: i, CoordID: coordID, Power: powers[i],
			SleepUnit: 4 * time.Millisecond,
			Model:     m, Opt: nn.NewSGD(0.1, 0.9, 0),
			Loader: dataset.NewLoader(parts[i], 16, rand.New(rand.NewSource(60+int64(i)))),
			RingOpt: p2p.RingOptions{
				DataTimeout:      2 * time.Second,
				HandshakeTimeout: time.Second,
				MaxReforms:       3,
			},
			ConfigTimeout: 20 * time.Second,
			BcastTimeout:  5 * time.Second,
		}, workerNodes[i])
		if err != nil {
			t.Fatal(err)
		}
		workers[i] = w
	}
	lc, err := runtime.NewLiveCoordinator(runtime.CoordinatorConfig{
		ID: coordID, Workers: []int{0, 1, 2, 3},
		Strategy:      strategy.Config{Tsync: 1, Np: 2, Quantum: 0.005, MaxFactor: 4},
		Alpha:         0.5,
		Rounds:        rounds,
		ReportTimeout: 15 * time.Second,
		Seed:          1,
	}, coordNode)
	if err != nil {
		t.Fatal(err)
	}
	var statuses []runtime.RoundStatus
	lc.OnRound = func(s runtime.RoundStatus) { statuses = append(statuses, s) }

	var wg sync.WaitGroup
	for i, w := range workers {
		i, w := i, w
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := w.Run(); err != nil {
				t.Errorf("worker %d: %v", i, err)
			}
		}()
	}
	if err := lc.Run(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()

	if len(statuses) != rounds {
		t.Fatalf("%d rounds completed", len(statuses))
	}
	for _, s := range statuses {
		if len(s.Reports) != k {
			t.Fatalf("round %d: %d reports", s.Round, len(s.Reports))
		}
	}
	// Every worker's model still classifies: the federation trained.
	for i, w := range workers {
		_ = w
		acc := workers[i].Version()
		if acc == 0 {
			t.Fatalf("worker %d never trained", i)
		}
	}
	acc := workers[0].Model().Accuracy(test.X, test.Y)
	if acc < 0.4 {
		t.Fatalf("TCP federation accuracy %.2f", acc)
	}
}

func TestIntegrationPublicAPIMatchesExperimentRunner(t *testing.T) {
	// hadfl.Run and the experiments package must agree when configured
	// identically (same workload, seed, scheme).
	res, err := Run(Options{Powers: []float64{4, 2, 2, 1}, TargetEpochs: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(Options{Powers: []float64{4, 2, 2, 1}, TargetEpochs: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy != res2.Accuracy || res.Time != res2.Time || res.Rounds != res2.Rounds {
		t.Fatal("public API is not deterministic across invocations")
	}
}
