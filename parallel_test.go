package hadfl

import (
	"math"
	"testing"

	"hadfl/internal/tensor"
)

// The determinism contract behind Canonical/Fingerprint excluding
// Parallelism: for a fixed seed, the concurrent runner (devices
// training concurrently inside a round) and the parallel tensor
// kernels must produce byte-identical final parameters and training
// curves at every parallelism level, across HADFL and both baselines.
// make test-race runs this under the race detector, which also
// exercises the concurrent phase for data races.
func TestParallelDeterminism(t *testing.T) {
	prevKernel := tensor.Parallelism()
	defer tensor.SetParallelism(prevKernel)

	base := Options{Powers: []float64{4, 2, 2, 1}, TargetEpochs: 3, Seed: 7}
	for _, scheme := range Schemes() {
		t.Run(scheme, func(t *testing.T) {
			seqOpts := base
			seqOpts.Parallelism = 1
			tensor.SetParallelism(1)
			seq, err := RunScheme(scheme, seqOpts)
			if err != nil {
				t.Fatal(err)
			}

			parOpts := base
			parOpts.Parallelism = 4
			tensor.SetParallelism(4)
			par, err := RunScheme(scheme, parOpts)
			if err != nil {
				t.Fatal(err)
			}
			tensor.SetParallelism(1)

			if len(seq.FinalParams) != len(par.FinalParams) {
				t.Fatalf("FinalParams lengths differ: %d vs %d", len(seq.FinalParams), len(par.FinalParams))
			}
			for i, v := range seq.FinalParams {
				if math.Float64bits(v) != math.Float64bits(par.FinalParams[i]) {
					t.Fatalf("FinalParams[%d] differs: seq %v vs par %v", i, v, par.FinalParams[i])
				}
			}
			if seq.Rounds != par.Rounds {
				t.Fatalf("Rounds differ: %d vs %d", seq.Rounds, par.Rounds)
			}
			sp, pp := seq.Series.Points, par.Series.Points
			if len(sp) != len(pp) {
				t.Fatalf("curve lengths differ: %d vs %d", len(sp), len(pp))
			}
			for i := range sp {
				if math.Float64bits(sp[i].Epoch) != math.Float64bits(pp[i].Epoch) ||
					math.Float64bits(sp[i].Time) != math.Float64bits(pp[i].Time) ||
					math.Float64bits(sp[i].Loss) != math.Float64bits(pp[i].Loss) ||
					math.Float64bits(sp[i].Accuracy) != math.Float64bits(pp[i].Accuracy) {
					t.Fatalf("curve point %d differs:\nseq %+v\npar %+v", i, sp[i], pp[i])
				}
			}
			if math.Float64bits(seq.Accuracy) != math.Float64bits(par.Accuracy) ||
				math.Float64bits(seq.Time) != math.Float64bits(par.Time) {
				t.Fatalf("summary differs: seq acc=%v t=%v, par acc=%v t=%v",
					seq.Accuracy, seq.Time, par.Accuracy, par.Time)
			}
		})
	}
}
