package hadfl

import (
	"strings"
	"testing"
)

func TestValidateAcceptsDefaults(t *testing.T) {
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero options invalid: %v", err)
	}
	if err := fastOpts(1).Validate(); err != nil {
		t.Fatalf("fast options invalid: %v", err)
	}
}

func TestValidateRejectsBadOptions(t *testing.T) {
	cases := map[string]Options{
		"negative power": {Powers: []float64{4, -1}},
		"zero power":     {Powers: []float64{0, 1}},
		"bad model":      {Model: "transformer"},
		"neg epochs":     {TargetEpochs: -3},
		"neg alpha":      {NonIIDAlpha: -0.5},
		"fail id range":  {FailAt: map[int]float64{9: 10}},
		"neg fail time":  {FailAt: map[int]float64{1: -1}},
	}
	for name, opts := range cases {
		if err := opts.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCanonicalNormalizesDefaults(t *testing.T) {
	// The zero value and the explicitly-filled defaults agree.
	explicit := Options{Powers: []float64{4, 2, 2, 1}, Model: "resnet", Seed: 1}
	if got, want := (Options{}).Canonical(), explicit.Canonical(); got != want {
		t.Fatalf("canonical mismatch:\n%s\n%s", got, want)
	}
	// OnRound does not change the canonical form.
	withCB := explicit
	withCB.OnRound = func(RoundUpdate) {}
	if withCB.Canonical() != explicit.Canonical() {
		t.Fatal("OnRound leaked into canonical form")
	}
	// The failure schedule is order-independent (map iteration).
	a := Options{FailAt: map[int]float64{3: 50, 1: 20}}
	if !strings.Contains(a.Canonical(), "fail={1=20,3=50}") {
		t.Fatalf("canonical = %s", a.Canonical())
	}
}

func TestFingerprintDistinguishesRuns(t *testing.T) {
	base := fastOpts(1)
	fp1, err := Fingerprint(SchemeHADFL, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(fp1) != 64 {
		t.Fatalf("fingerprint %q not a sha256 hex", fp1)
	}
	fp2, _ := Fingerprint(SchemeHADFL, fastOpts(1))
	if fp1 != fp2 {
		t.Fatal("identical options produced different fingerprints")
	}
	for name, alt := range map[string]func() (string, Options){
		"scheme": func() (string, Options) { return SchemeFedAvg, base },
		"seed":   func() (string, Options) { o := base; o.Seed = 2; return SchemeHADFL, o },
		"epochs": func() (string, Options) { o := base; o.TargetEpochs = 9; return SchemeHADFL, o },
		"powers": func() (string, Options) { o := base; o.Powers = []float64{4, 2, 2, 2}; return SchemeHADFL, o },
		"model":  func() (string, Options) { o := base; o.Model = "vgg"; return SchemeHADFL, o },
	} {
		scheme, opts := alt()
		fp, err := Fingerprint(scheme, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fp == fp1 {
			t.Errorf("%s: fingerprint collision", name)
		}
	}
}

func TestFingerprintRejectsInvalid(t *testing.T) {
	if _, err := Fingerprint("nope", Options{}); err == nil {
		t.Fatal("unknown scheme fingerprinted")
	}
	if _, err := Fingerprint(SchemeHADFL, Options{Powers: []float64{-1}}); err == nil {
		t.Fatal("invalid options fingerprinted")
	}
}

func TestSchemesAndValidScheme(t *testing.T) {
	all := Schemes()
	want := []string{SchemeHADFL, SchemeFedAvg, SchemeDistributed, SchemeAsyncFL, SchemeHADFLGrouped}
	if len(all) != len(want) {
		t.Fatalf("Schemes() = %v", all)
	}
	for i, s := range want {
		if all[i] != s {
			t.Errorf("Schemes()[%d] = %q, want %q", i, all[i], s)
		}
		if !ValidScheme(s) {
			t.Errorf("ValidScheme(%q) = false", s)
		}
	}
	if ValidScheme("centralized") {
		t.Error("ValidScheme accepted unknown name")
	}
}

func TestAsyncFLFingerprintRoundTrip(t *testing.T) {
	// asyncfl is a first-class registered scheme: it fingerprints like
	// the others and the fingerprint distinguishes it from them.
	opts := fastOpts(1)
	fp, err := Fingerprint(SchemeAsyncFL, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fp) != 64 {
		t.Fatalf("fingerprint %q not a sha256 hex", fp)
	}
	for _, other := range []string{SchemeHADFL, SchemeFedAvg, SchemeDistributed} {
		ofp, err := Fingerprint(other, opts)
		if err != nil {
			t.Fatal(err)
		}
		if ofp == fp {
			t.Fatalf("asyncfl fingerprint collides with %s", other)
		}
	}
	fp2, err := Fingerprint(SchemeAsyncFL, fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if fp2 != fp {
		t.Fatal("identical asyncfl options produced different fingerprints")
	}
}
