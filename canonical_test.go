package hadfl

import (
	"strings"
	"testing"
)

func TestValidateAcceptsDefaults(t *testing.T) {
	if err := (Options{}).Validate(); err != nil {
		t.Fatalf("zero options invalid: %v", err)
	}
	if err := fastOpts(1).Validate(); err != nil {
		t.Fatalf("fast options invalid: %v", err)
	}
}

func TestValidateRejectsBadOptions(t *testing.T) {
	cases := map[string]Options{
		"negative power": {Powers: []float64{4, -1}},
		"zero power":     {Powers: []float64{0, 1}},
		"bad model":      {Model: "transformer"},
		"neg epochs":     {TargetEpochs: -3},
		"neg alpha":      {NonIIDAlpha: -0.5},
		"fail id range":  {FailAt: map[int]float64{9: 10}},
		"neg fail time":  {FailAt: map[int]float64{1: -1}},
		"neg group size": {GroupSize: -2},
		"neg inter":      {InterEvery: -1},
	}
	for name, opts := range cases {
		if err := opts.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestCanonicalNormalizesDefaults(t *testing.T) {
	// The zero value and the explicitly-filled defaults agree.
	explicit := Options{Powers: []float64{4, 2, 2, 1}, Model: "resnet", Seed: 1}
	if got, want := (Options{}).Canonical(), explicit.Canonical(); got != want {
		t.Fatalf("canonical mismatch:\n%s\n%s", got, want)
	}
	// OnRound does not change the canonical form.
	withCB := explicit
	withCB.OnRound = func(RoundUpdate) {}
	if withCB.Canonical() != explicit.Canonical() {
		t.Fatal("OnRound leaked into canonical form")
	}
	// The failure schedule is order-independent (map iteration).
	a := Options{FailAt: map[int]float64{3: 50, 1: 20}}
	if !strings.Contains(a.Canonical(), "fail={1=20,3=50}") {
		t.Fatalf("canonical = %s", a.Canonical())
	}
}

func TestFingerprintDistinguishesRuns(t *testing.T) {
	base := fastOpts(1)
	fp1, err := Fingerprint(SchemeHADFL, base)
	if err != nil {
		t.Fatal(err)
	}
	if len(fp1) != 64 {
		t.Fatalf("fingerprint %q not a sha256 hex", fp1)
	}
	fp2, _ := Fingerprint(SchemeHADFL, fastOpts(1))
	if fp1 != fp2 {
		t.Fatal("identical options produced different fingerprints")
	}
	for name, alt := range map[string]func() (string, Options){
		"scheme": func() (string, Options) { return SchemeFedAvg, base },
		"seed":   func() (string, Options) { o := base; o.Seed = 2; return SchemeHADFL, o },
		"epochs": func() (string, Options) { o := base; o.TargetEpochs = 9; return SchemeHADFL, o },
		"powers": func() (string, Options) { o := base; o.Powers = []float64{4, 2, 2, 2}; return SchemeHADFL, o },
		"model":  func() (string, Options) { o := base; o.Model = "vgg"; return SchemeHADFL, o },
		"group":  func() (string, Options) { o := base; o.GroupSize = 3; return SchemeHADFL, o },
		"inter":  func() (string, Options) { o := base; o.InterEvery = 4; return SchemeHADFL, o },
	} {
		scheme, opts := alt()
		fp, err := Fingerprint(scheme, opts)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if fp == fp1 {
			t.Errorf("%s: fingerprint collision", name)
		}
	}
}

// TestGroupedKnobsFingerprintAndResults pins the ROADMAP contract for
// the exposed hierarchy knobs: distinct GroupSize/InterEvery values
// produce distinct canonical forms and fingerprints (so the serve cache
// keeps one entry per setting), and the hadfl-grouped scheme actually
// consumes them — a different grouping trains a different trajectory.
func TestGroupedKnobsFingerprintAndResults(t *testing.T) {
	base := fastOpts(1)
	seen := map[string]string{}
	for _, knobs := range []struct{ group, inter int }{
		{0, 0}, {2, 2}, {3, 2}, {2, 4}, {4, 1},
	} {
		o := base
		o.GroupSize, o.InterEvery = knobs.group, knobs.inter
		canon := o.Canonical()
		fp, err := Fingerprint(SchemeHADFLGrouped, o)
		if err != nil {
			t.Fatalf("group=%d inter=%d: %v", knobs.group, knobs.inter, err)
		}
		if prev, dup := seen[fp]; dup {
			t.Errorf("fingerprint collision between %q and %q", prev, canon)
		}
		seen[fp] = canon
	}

	if testing.Short() {
		t.Skip("skipping grouped-knob training runs in -short mode")
	}
	// One big group that never inter-syncs vs the default pairs-of-2:
	// the trajectories must differ (the knob reaches the scheme), while
	// re-running identical knobs reproduces byte-identical results.
	def, err := RunScheme(SchemeHADFLGrouped, base)
	if err != nil {
		t.Fatal(err)
	}
	wide := base
	wide.GroupSize = len(base.Powers)
	wide.InterEvery = 1
	alt, err := RunScheme(SchemeHADFLGrouped, wide)
	if err != nil {
		t.Fatal(err)
	}
	if alt.Accuracy == def.Accuracy && alt.Time == def.Time && alt.Rounds == def.Rounds {
		t.Error("GroupSize/InterEvery did not change the grouped trajectory")
	}
	again, err := RunScheme(SchemeHADFLGrouped, wide)
	if err != nil {
		t.Fatal(err)
	}
	if again.Accuracy != alt.Accuracy || again.Time != alt.Time {
		t.Error("identical grouped knobs did not reproduce the run")
	}
}

func TestFingerprintRejectsInvalid(t *testing.T) {
	if _, err := Fingerprint("nope", Options{}); err == nil {
		t.Fatal("unknown scheme fingerprinted")
	}
	if _, err := Fingerprint(SchemeHADFL, Options{Powers: []float64{-1}}); err == nil {
		t.Fatal("invalid options fingerprinted")
	}
}

func TestSchemesAndValidScheme(t *testing.T) {
	all := Schemes()
	want := []string{SchemeHADFL, SchemeFedAvg, SchemeDistributed, SchemeAsyncFL, SchemeHADFLGrouped}
	if len(all) != len(want) {
		t.Fatalf("Schemes() = %v", all)
	}
	for i, s := range want {
		if all[i] != s {
			t.Errorf("Schemes()[%d] = %q, want %q", i, all[i], s)
		}
		if !ValidScheme(s) {
			t.Errorf("ValidScheme(%q) = false", s)
		}
	}
	if ValidScheme("centralized") {
		t.Error("ValidScheme accepted unknown name")
	}
}

func TestAsyncFLFingerprintRoundTrip(t *testing.T) {
	// asyncfl is a first-class registered scheme: it fingerprints like
	// the others and the fingerprint distinguishes it from them.
	opts := fastOpts(1)
	fp, err := Fingerprint(SchemeAsyncFL, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(fp) != 64 {
		t.Fatalf("fingerprint %q not a sha256 hex", fp)
	}
	for _, other := range []string{SchemeHADFL, SchemeFedAvg, SchemeDistributed} {
		ofp, err := Fingerprint(other, opts)
		if err != nil {
			t.Fatal(err)
		}
		if ofp == fp {
			t.Fatalf("asyncfl fingerprint collides with %s", other)
		}
	}
	fp2, err := Fingerprint(SchemeAsyncFL, fastOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if fp2 != fp {
		t.Fatal("identical asyncfl options produced different fingerprints")
	}
}
