package hadfl

// Benchmark harness: one benchmark per paper artifact (see DESIGN.md's
// experiment index). Each benchmark regenerates the corresponding table
// or figure data on the fast workload profile and reports the paper's
// headline quantities as custom metrics:
//
//	BenchmarkTable1/*        — Table I (time to max accuracy, speedups)
//	BenchmarkFigure3/*       — Fig. 3 panels (series regeneration)
//	BenchmarkWorstCase       — §IV-B upper-bound-of-accuracy-loss ablation
//	BenchmarkCommVolume      — 2·K·M communication-volume claim
//	BenchmarkSelectionAblation, BenchmarkPredictorAblation — design choices
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Absolute times are virtual-simulation seconds, not wall seconds; the
// reproduction target is the *shape* (who wins, by what factor).

import (
	"context"
	"testing"

	"hadfl/internal/experiments"
)

// benchComparison runs one workload×heterogeneity comparison and reports
// the Table I quantities as custom metrics.
func benchComparison(b *testing.B, workload string, powers []float64, seed int64) {
	b.Helper()
	var w experiments.Workload
	for i := 0; i < b.N; i++ {
		if workload == "resnet" {
			w = experiments.ResNetWorkload(true, seed)
		} else {
			w = experiments.VGGWorkload(true, seed)
		}
		w.TargetEpochs = 25
		cmp, err := experiments.RunComparison(context.Background(), w, powers, seed)
		if err != nil {
			b.Fatal(err)
		}
		th, hAcc, _ := cmp.HADFL.Series.TimeToMaxAccuracy()
		tf, _, _ := cmp.FedAvg.Series.TimeToMaxAccuracy()
		td, _, _ := cmp.Dist.Series.TimeToMaxAccuracy()
		b.ReportMetric(th, "hadfl-vsec")
		b.ReportMetric(tf, "fedavg-vsec")
		b.ReportMetric(td, "dist-vsec")
		if th > 0 {
			b.ReportMetric(tf/th, "speedup-vs-fedavg")
			b.ReportMetric(td/th, "speedup-vs-dist")
		}
		b.ReportMetric(100*hAcc, "hadfl-acc-%")
	}
}

func BenchmarkTable1(b *testing.B) {
	b.Run("resnet/het=3,3,1,1", func(b *testing.B) { benchComparison(b, "resnet", experiments.Het3311, 1) })
	b.Run("resnet/het=4,2,2,1", func(b *testing.B) { benchComparison(b, "resnet", experiments.Het4221, 1) })
	b.Run("vgg/het=3,3,1,1", func(b *testing.B) { benchComparison(b, "vgg", experiments.Het3311, 1) })
	b.Run("vgg/het=4,2,2,1", func(b *testing.B) { benchComparison(b, "vgg", experiments.Het4221, 1) })
}

// benchScheme regenerates one curve of a Fig. 3 panel: the named scheme
// on the named workload, reporting curve end-state.
func benchScheme(b *testing.B, scheme, model string, powers []float64) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := RunScheme(scheme, Options{
			Powers: powers, Model: model, TargetEpochs: 20, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.Accuracy, "max-acc-%")
		b.ReportMetric(res.Time, "time-to-max-vsec")
		b.ReportMetric(float64(res.Series.Len()), "curve-points")
	}
}

// BenchmarkFigure3 regenerates each Fig. 3 panel's series. Panels a–c
// share the resnet runs (loss-vs-epoch, acc-vs-epoch, acc-vs-time are
// three projections of the same points); d–f likewise for vgg.
func BenchmarkFigure3(b *testing.B) {
	for _, panel := range []struct {
		name, model string
	}{
		{"abc_resnet", "resnet"},
		{"def_vgg", "vgg"},
	} {
		for _, scheme := range []string{SchemeHADFL, SchemeFedAvg, SchemeDistributed} {
			b.Run(panel.name+"/"+scheme, func(b *testing.B) {
				benchScheme(b, scheme, panel.model, []float64{4, 2, 2, 1})
			})
		}
	}
}

func BenchmarkWorstCase(b *testing.B) {
	for i := 0; i < b.N; i++ {
		normal, worst, err := experiments.WorstCase(context.Background(), true, 1)
		if err != nil {
			b.Fatal(err)
		}
		nb, _ := normal.Series.MaxAccuracy()
		wb, _ := worst.Series.MaxAccuracy()
		b.ReportMetric(100*nb.Accuracy, "normal-acc-%")
		b.ReportMetric(100*wb.Accuracy, "worstcase-acc-%")
		b.ReportMetric(100*(nb.Accuracy-wb.Accuracy), "acc-gap-pts")
	}
}

func BenchmarkCommVolume(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.CommVolume(context.Background(), true, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Scheme {
			case "hadfl":
				b.ReportMetric(float64(r.PerRoundDev), "hadfl-devB/round")
				b.ReportMetric(float64(r.ServerBytes), "hadfl-serverB")
			case "decentralized-fedavg":
				b.ReportMetric(float64(r.PerRoundDev), "fedavg-devB/round")
			case "centralized-fedavg (analytic)":
				b.ReportMetric(float64(r.ServerBytes), "central-serverB")
			}
		}
	}
}

func BenchmarkSelectionAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		series, err := experiments.SelectionAblation(context.Background(), true, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range series {
			best, _ := s.MaxAccuracy()
			b.ReportMetric(100*best.Accuracy, s.Name+"-acc-%")
		}
	}
}

func BenchmarkPredictorAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		adaptive, static := experiments.PredictorAblation(1, 80, 0.5)
		b.ReportMetric(adaptive, "adaptive-MAE")
		b.ReportMetric(static, "static-MAE")
		b.ReportMetric(static/adaptive, "improvement-x")
	}
}

// BenchmarkAsyncBaseline regenerates the EXT-ASYNC comparison: HADFL
// versus staleness-weighted asynchronous centralized FL ([6][7]).
func BenchmarkAsyncBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AsyncComparison(context.Background(), true, 1)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Scheme {
			case "hadfl":
				b.ReportMetric(r.TimeToMax, "hadfl-vsec")
				b.ReportMetric(float64(r.ServerBytes), "hadfl-serverB")
			case "async-fedavg":
				b.ReportMetric(r.TimeToMax, "async-vsec")
				b.ReportMetric(float64(r.ServerBytes), "async-serverB")
			}
		}
	}
}

// BenchmarkHetBandwidth regenerates the EXT-BAND heterogeneous-bandwidth
// sweep (the paper's future-work axis).
func BenchmarkHetBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.HetBandwidth(context.Background(), true, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].TotalTime, "uniform-vsec")
		b.ReportMetric(rows[1].TotalTime, "one-slow-vsec")
		b.ReportMetric(rows[2].TotalTime, "all-slow-vsec")
	}
}

// BenchmarkGroupedHADFL regenerates the EXT-GROUP flat-vs-hierarchical
// comparison on 8 devices (Fig. 2a).
func BenchmarkGroupedHADFL(b *testing.B) {
	for i := 0; i < b.N; i++ {
		flat, grouped, err := experiments.GroupedComparison(context.Background(), true, 1)
		if err != nil {
			b.Fatal(err)
		}
		fb, _ := flat.MaxAccuracy()
		gb, _ := grouped.MaxAccuracy()
		b.ReportMetric(100*fb.Accuracy, "flat-acc-%")
		b.ReportMetric(100*gb.Accuracy, "grouped-acc-%")
	}
}

// BenchmarkHADFLRound measures the per-round cost of the HADFL simulation
// itself (training + aggregation + evaluation), the inner loop every
// experiment pays.
func BenchmarkHADFLRound(b *testing.B) {
	res, err := Run(Options{Powers: []float64{4, 2, 2, 1}, TargetEpochs: 10, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rounds := res.Rounds
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(Options{Powers: []float64{4, 2, 2, 1}, TargetEpochs: 10, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(rounds), "rounds/run")
}
