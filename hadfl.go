// Package hadfl is the public façade of the HADFL reproduction: a
// heterogeneity-aware decentralized federated-learning framework (Cao et
// al., DAC 2021). It wraps the internal packages into a small API for
// running HADFL and its two baselines on simulated heterogeneous
// clusters.
//
// Quick start:
//
//	res, err := hadfl.Run(hadfl.Options{Powers: []float64{4, 2, 2, 1}})
//	fmt.Printf("accuracy %.1f%% in %.0f virtual seconds\n",
//		100*res.Accuracy, res.Time)
//
// The three schemes:
//
//   - SchemeHADFL: the paper's contribution — asynchronous local steps
//     proportional to device power, probability-based partial
//     aggregation over a gossip ring, fault-tolerant bypass.
//   - SchemeFedAvg: Decentralized-FedAvg — equal local steps, full
//     synchronous gossip average.
//   - SchemeDistributed: PyTorch-DDP-style synchronous data parallelism
//     with per-iteration ring all-reduce.
//
// Times are virtual seconds from the discrete simulation (the paper's
// sleep()-emulated heterogeneity); compare ratios, not absolutes.
package hadfl

import (
	"fmt"
	"runtime"

	"hadfl/internal/baselines"
	"hadfl/internal/core"
	"hadfl/internal/experiments"
	"hadfl/internal/metrics"
	"hadfl/internal/tensor"
)

// Scheme names accepted by RunScheme.
const (
	SchemeHADFL       = "hadfl"
	SchemeFedAvg      = "decentralized-fedavg"
	SchemeDistributed = "distributed"
)

// Options configures a training run.
type Options struct {
	// Powers is the computing-power ratio array (device count = len).
	// Default: [4,2,2,1], the paper's more skewed distribution.
	Powers []float64
	// Model selects the workload: "resnet" (residual) or "vgg" (plain).
	// Default "resnet".
	Model string
	// Full switches from the fast MLP-based profile to the convolutional
	// profile (slower, closer to the paper's models).
	Full bool
	// TargetEpochs overrides the workload's epoch budget when > 0.
	TargetEpochs float64
	// NonIIDAlpha, when > 0, splits data with a Dirichlet(alpha)
	// partition instead of IID.
	NonIIDAlpha float64
	// FailAt schedules device crashes: id → virtual failure time.
	FailAt map[int]float64
	// Seed makes runs reproducible. Default 1.
	Seed int64
	// OnRound, when non-nil, receives progress after every HADFL
	// synchronization round. The baseline schemes report through it
	// too — FedAvg per round, distributed per evaluation interval —
	// with Selected empty and Bypassed zero. It never changes the run's
	// outcome (excluded from Canonical/Fingerprint).
	OnRound func(RoundUpdate)
	// Parallelism bounds how many simulated devices train concurrently
	// inside each synchronization round, for every scheme (0 =
	// GOMAXPROCS, 1 = sequential). It is a throughput knob only:
	// results are byte-identical at every setting, so it is excluded
	// from Canonical/Fingerprint and two requests differing only in
	// Parallelism coalesce onto one cached result. Kernel-level
	// parallelism inside tensor operations is configured separately
	// via SetComputeParallelism.
	Parallelism int
}

// SetComputeParallelism sets the worker count of the shared tensor
// kernel pool (matrix multiplies, im2col, vector math), which every
// run in the process shares; 0 or negative resets it to GOMAXPROCS.
// Like Options.Parallelism this never changes results, only
// throughput. Call it at startup, not while runs are in flight.
func SetComputeParallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	tensor.SetParallelism(n)
}

// RoundUpdate is per-round progress delivered to Options.OnRound.
type RoundUpdate struct {
	Round    int
	Time     float64 // virtual seconds at round end
	Loss     float64
	Accuracy float64
	Selected []int // devices that performed the partial aggregation
	Bypassed int   // dead ring members bypassed this round
}

func (o *Options) fill() {
	if len(o.Powers) == 0 {
		o.Powers = []float64{4, 2, 2, 1}
	}
	if o.Model == "" {
		o.Model = "resnet"
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

func (o Options) workload() (experiments.Workload, error) {
	var w experiments.Workload
	switch o.Model {
	case "resnet":
		w = experiments.ResNetWorkload(!o.Full, o.Seed)
	case "vgg":
		w = experiments.VGGWorkload(!o.Full, o.Seed)
	default:
		return w, fmt.Errorf("hadfl: unknown model %q (want resnet or vgg)", o.Model)
	}
	if o.TargetEpochs > 0 {
		w.TargetEpochs = o.TargetEpochs
	}
	return w, nil
}

// Result summarizes one training run.
type Result struct {
	// Scheme that produced this result.
	Scheme string
	// Accuracy is the maximum test accuracy reached (0..1).
	Accuracy float64
	// Time is the virtual time (seconds) at which Accuracy was reached —
	// the Table I metric.
	Time float64
	// Series is the full training curve.
	Series *metrics.Series
	// DeviceBytes / ServerBytes account communication volume.
	DeviceBytes int64
	ServerBytes int64
	// Rounds is the number of synchronization rounds (or iterations).
	Rounds int
	// FinalParams is the final aggregated model's flat parameter vector,
	// loadable with EvaluateParams or persistable via
	// coordinator.ModelStore.
	FinalParams []float64
}

func summarize(scheme string, res *core.Result) *Result {
	t, acc, _ := res.Series.TimeToMaxAccuracy()
	return &Result{
		Scheme:      scheme,
		Accuracy:    acc,
		Time:        t,
		Series:      res.Series,
		DeviceBytes: res.Comm.TotalDeviceBytes(),
		ServerBytes: res.Comm.ServerBytes,
		Rounds:      res.Rounds,
		FinalParams: res.FinalParams,
	}
}

// EvaluateParams loads a flat parameter vector (e.g. a persisted model
// snapshot) into the workload's model and returns test loss and
// accuracy. The Options must match the run that produced the vector
// (same Model, Full flag and Seed, so architecture and test split
// agree).
func EvaluateParams(opts Options, params []float64) (loss, acc float64, err error) {
	opts.fill()
	w, err := opts.workload()
	if err != nil {
		return 0, 0, err
	}
	cluster, err := core.BuildCluster(core.ClusterSpec{
		Powers:       opts.Powers,
		BaseStepTime: w.BaseStepTime,
		Arch:         w.Arch,
		Train:        w.Train,
		Test:         w.Test,
		BatchSize:    w.BatchSize,
		LR:           w.LR,
		Seed:         opts.Seed,
	})
	if err != nil {
		return 0, 0, err
	}
	loss, acc = cluster.Evaluate(params)
	return loss, acc, nil
}

// Run trains with the HADFL scheme.
func Run(opts Options) (*Result, error) {
	return RunScheme(SchemeHADFL, opts)
}

// RunScheme trains with the named scheme.
func RunScheme(scheme string, opts Options) (*Result, error) {
	opts.fill()
	w, err := opts.workload()
	if err != nil {
		return nil, err
	}
	cluster, err := core.BuildCluster(core.ClusterSpec{
		Powers:       opts.Powers,
		BaseStepTime: w.BaseStepTime,
		Arch:         w.Arch,
		Train:        w.Train,
		Test:         w.Test,
		NonIIDAlpha:  opts.NonIIDAlpha,
		BatchSize:    w.BatchSize,
		LR:           w.LR,
		Momentum:     w.Momentum,
		WeightDecay:  w.WeightDecay,
		FailAt:       opts.FailAt,
		Seed:         opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	switch scheme {
	case SchemeHADFL:
		cfg := core.DefaultConfig()
		cfg.TargetEpochs = w.TargetEpochs
		cfg.Seed = opts.Seed
		cfg.Parallelism = opts.Parallelism
		if opts.OnRound != nil {
			cb := opts.OnRound
			cfg.OnRound = func(ri core.RoundInfo) {
				cb(RoundUpdate{
					Round: ri.Round, Time: ri.Time, Loss: ri.Loss,
					Accuracy: ri.Accuracy, Selected: ri.Selected, Bypassed: ri.Bypassed,
				})
			}
		}
		res, err := core.RunHADFL(cluster, cfg)
		if err != nil {
			return nil, err
		}
		return summarize(scheme, res), nil
	case SchemeFedAvg:
		cfg := baselines.DefaultFedAvgConfig()
		cfg.TargetEpochs = w.TargetEpochs
		cfg.LocalSteps = w.FedAvgLocalSteps
		cfg.Seed = opts.Seed
		cfg.Parallelism = opts.Parallelism
		cfg.OnRound = baselineCallback(opts.OnRound)
		res, err := baselines.RunFedAvg(cluster, cfg)
		if err != nil {
			return nil, err
		}
		return summarize(scheme, res), nil
	case SchemeDistributed:
		cfg := baselines.DefaultDistributedConfig()
		cfg.TargetEpochs = w.TargetEpochs
		cfg.Seed = opts.Seed
		cfg.Parallelism = opts.Parallelism
		cfg.OnRound = baselineCallback(opts.OnRound)
		res, err := baselines.RunDistributed(cluster, cfg)
		if err != nil {
			return nil, err
		}
		return summarize(scheme, res), nil
	default:
		return nil, fmt.Errorf("hadfl: unknown scheme %q", scheme)
	}
}

// baselineCallback adapts Options.OnRound to the baselines' progress
// hook; Selected/Bypassed stay zero (no partial aggregation there).
func baselineCallback(cb func(RoundUpdate)) func(int, metrics.Point) {
	if cb == nil {
		return nil
	}
	return func(round int, p metrics.Point) {
		cb(RoundUpdate{Round: round, Time: p.Time, Loss: p.Loss, Accuracy: p.Accuracy})
	}
}

// Compare runs all three schemes on identical clusters and returns
// results keyed by scheme name.
func Compare(opts Options) (map[string]*Result, error) {
	out := make(map[string]*Result, 3)
	for _, scheme := range Schemes() {
		res, err := RunScheme(scheme, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", scheme, err)
		}
		out[scheme] = res
	}
	return out, nil
}

// Speedup returns how much faster a reached accuracy target than b.
func Speedup(a, b *Result, target float64) (float64, bool) {
	return metrics.Speedup(a.Series, b.Series, target)
}
