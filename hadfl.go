// Package hadfl is the public façade of the HADFL reproduction: a
// heterogeneity-aware decentralized federated-learning framework (Cao et
// al., DAC 2021). It wraps the internal packages into a small API for
// running pluggable training schemes on simulated heterogeneous
// clusters.
//
// Quick start:
//
//	res, err := hadfl.Run(hadfl.Options{Powers: []float64{4, 2, 2, 1}})
//	fmt.Printf("accuracy %.1f%% in %.0f virtual seconds\n",
//		100*res.Accuracy, res.Time)
//
// Schemes live in a process-level registry (see Scheme and
// RegisterScheme); the built-ins are:
//
//   - SchemeHADFL: the paper's contribution — asynchronous local steps
//     proportional to device power, probability-based partial
//     aggregation over a gossip ring, fault-tolerant bypass.
//   - SchemeFedAvg: Decentralized-FedAvg — equal local steps, full
//     synchronous gossip average.
//   - SchemeDistributed: PyTorch-DDP-style synchronous data parallelism
//     with per-iteration ring all-reduce.
//   - SchemeAsyncFL: centralized asynchronous FL with
//     staleness-weighted aggregation (the related-work family the paper
//     argues against).
//   - SchemeHADFLGrouped: the paper's Fig. 2(a) hierarchy — intra-group
//     partial aggregation every round, periodic inter-group syncs over
//     per-group representatives.
//
// RunContext threads a context.Context through every scheme: cancel it
// and the run stops within about one device step, returning ctx.Err().
//
// Times are virtual seconds from the discrete simulation (the paper's
// sleep()-emulated heterogeneity); compare ratios, not absolutes.
package hadfl

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"hadfl/internal/core"
	"hadfl/internal/experiments"
	"hadfl/internal/metrics"
	"hadfl/internal/tensor"
)

// Options configures a training run.
type Options struct {
	// Powers is the computing-power ratio array (device count = len).
	// Default: [4,2,2,1], the paper's more skewed distribution.
	Powers []float64
	// Model selects the workload: "resnet" (residual) or "vgg" (plain).
	// Default "resnet".
	Model string
	// Full switches from the fast MLP-based profile to the convolutional
	// profile (slower, closer to the paper's models).
	Full bool
	// TargetEpochs overrides the workload's epoch budget when > 0.
	TargetEpochs float64
	// NonIIDAlpha, when > 0, splits data with a Dirichlet(alpha)
	// partition instead of IID.
	NonIIDAlpha float64
	// FailAt schedules device crashes: id → virtual failure time.
	FailAt map[int]float64
	// Seed makes runs reproducible. Default 1.
	Seed int64
	// GroupSize and InterEvery shape the hierarchical hadfl-grouped
	// scheme: the maximum devices per group and the inter-group sync
	// period in intra-group rounds (§III-C: the inter-group period is an
	// integer multiple of the intra-group period). 0 keeps the scheme's
	// defaults (2 and 2); the non-hierarchical schemes ignore both.
	// Unlike Parallelism these change the training trajectory, so they
	// participate in Canonical/Fingerprint — sweeping them from the
	// serve API yields distinct cached results per setting.
	GroupSize  int
	InterEvery int
	// OnRound, when non-nil, receives progress after every HADFL
	// synchronization round. The baseline schemes report through it
	// too — FedAvg per round, distributed per evaluation interval —
	// with Selected empty and Bypassed zero. It never changes the run's
	// outcome (excluded from Canonical/Fingerprint).
	OnRound func(RoundUpdate)
	// Parallelism bounds how many simulated devices train concurrently
	// inside each synchronization round, for every scheme (0 =
	// GOMAXPROCS, 1 = sequential). It is a throughput knob only:
	// results are byte-identical at every setting, so it is excluded
	// from Canonical/Fingerprint and two requests differing only in
	// Parallelism coalesce onto one cached result. Kernel-level
	// parallelism inside tensor operations is configured separately
	// via SetComputeParallelism.
	Parallelism int
}

// SetComputeParallelism sets the worker count of the shared tensor
// kernel pool (matrix multiplies, im2col, vector math), which every
// run in the process shares; 0 or negative resets it to GOMAXPROCS.
// Like Options.Parallelism this never changes results, only
// throughput. Call it at startup, not while runs are in flight.
func SetComputeParallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	tensor.SetParallelism(n)
}

// RoundUpdate is per-round progress delivered to Options.OnRound.
type RoundUpdate struct {
	// Scheme names the run that produced this update — the attribution
	// handle when one callback observes several schemes at once
	// (Compare runs them concurrently).
	Scheme   string
	Round    int
	Time     float64 // virtual seconds at round end
	Loss     float64
	Accuracy float64
	Selected []int // devices that performed the partial aggregation
	Bypassed int   // dead ring members bypassed this round
}

func (o *Options) fill() {
	if len(o.Powers) == 0 {
		o.Powers = []float64{4, 2, 2, 1}
	}
	if o.Model == "" {
		o.Model = "resnet"
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

func (o Options) workload() (experiments.Workload, error) {
	var w experiments.Workload
	switch o.Model {
	case "resnet":
		w = experiments.ResNetWorkload(!o.Full, o.Seed)
	case "vgg":
		w = experiments.VGGWorkload(!o.Full, o.Seed)
	default:
		return w, fmt.Errorf("hadfl: unknown model %q (want resnet or vgg)", o.Model)
	}
	if o.TargetEpochs > 0 {
		w.TargetEpochs = o.TargetEpochs
	}
	return w, nil
}

// Result summarizes one training run.
type Result struct {
	// Scheme that produced this result.
	Scheme string
	// Accuracy is the maximum test accuracy reached (0..1).
	Accuracy float64
	// Time is the virtual time (seconds) at which Accuracy was reached —
	// the Table I metric.
	Time float64
	// Series is the full training curve.
	Series *metrics.Series
	// DeviceBytes / ServerBytes account communication volume.
	DeviceBytes int64
	ServerBytes int64
	// Rounds is the number of synchronization rounds (or iterations).
	Rounds int
	// FinalParams is the final aggregated model's flat parameter vector,
	// loadable with EvaluateParams or persistable via
	// coordinator.ModelStore.
	FinalParams []float64
	// EvalBatches / EvalSeconds report the evaluation engine's work for
	// this run (scoring batches forwarded, wall-clock seconds) — the
	// source of the serve layer's eval_batches_total /
	// eval_seconds_total metrics. Telemetry only: excluded from
	// Canonical/Fingerprint like every other observability field.
	EvalBatches int64
	EvalSeconds float64
}

func summarize(scheme string, res *core.Result) *Result {
	t, acc, _ := res.Series.TimeToMaxAccuracy()
	return &Result{
		Scheme:      scheme,
		Accuracy:    acc,
		Time:        t,
		Series:      res.Series,
		DeviceBytes: res.Comm.TotalDeviceBytes(),
		ServerBytes: res.Comm.ServerBytes,
		Rounds:      res.Rounds,
		FinalParams: res.FinalParams,
	}
}

// EvaluateParams loads a flat parameter vector (e.g. a persisted model
// snapshot) into the workload's model and returns test loss and
// accuracy. The Options must match the run that produced the vector
// (same Model, Full flag and Seed, so architecture and test split
// agree).
func EvaluateParams(opts Options, params []float64) (loss, acc float64, err error) {
	opts.fill()
	w, err := opts.workload()
	if err != nil {
		return 0, 0, err
	}
	cluster, err := core.BuildCluster(core.ClusterSpec{
		Powers:       opts.Powers,
		BaseStepTime: w.BaseStepTime,
		Arch:         w.Arch,
		Train:        w.Train,
		Test:         w.Test,
		BatchSize:    w.BatchSize,
		LR:           w.LR,
		Seed:         opts.Seed,
	})
	if err != nil {
		return 0, 0, err
	}
	loss, acc = cluster.Evaluate(params)
	return loss, acc, nil
}

// InitialParams returns the deterministic initial parameter vector a
// run with these options starts from — a pure function of the workload
// architecture and Seed. Both ends of a dispatched job can derive it
// independently, which is what lets reference-based wire codecs (delta,
// topk) encode a trained model against it without shipping the
// reference itself.
func InitialParams(opts Options) ([]float64, error) {
	opts.fill()
	w, err := opts.workload()
	if err != nil {
		return nil, err
	}
	cluster, err := core.BuildCluster(core.ClusterSpec{
		Powers:       opts.Powers,
		BaseStepTime: w.BaseStepTime,
		Arch:         w.Arch,
		Train:        w.Train,
		Test:         w.Test,
		BatchSize:    w.BatchSize,
		LR:           w.LR,
		Seed:         opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), cluster.InitParams...), nil
}

// Run trains with the HADFL scheme.
func Run(opts Options) (*Result, error) {
	return RunContext(context.Background(), SchemeHADFL, opts)
}

// RunScheme trains with the named registered scheme.
func RunScheme(scheme string, opts Options) (*Result, error) {
	return RunContext(context.Background(), scheme, opts)
}

// RunContext trains with the named registered scheme under ctx:
// cancellation (or deadline expiry) stops the run within about one
// device step and returns ctx.Err(). The scheme dispatch, defaults and
// result shape are otherwise identical to RunScheme.
func RunContext(ctx context.Context, scheme string, opts Options) (*Result, error) {
	s, ok := lookupScheme(scheme)
	if !ok {
		return nil, unknownSchemeError(scheme)
	}
	if err := ctx.Err(); err != nil {
		return nil, err // fail fast before paying cluster construction
	}
	opts.fill()
	w, err := opts.workload()
	if err != nil {
		return nil, err
	}
	cluster, err := core.BuildCluster(core.ClusterSpec{
		Powers:       opts.Powers,
		BaseStepTime: w.BaseStepTime,
		Arch:         w.Arch,
		Train:        w.Train,
		Test:         w.Test,
		NonIIDAlpha:  opts.NonIIDAlpha,
		BatchSize:    w.BatchSize,
		LR:           w.LR,
		Momentum:     w.Momentum,
		WeightDecay:  w.WeightDecay,
		FailAt:       opts.FailAt,
		Seed:         opts.Seed,
	})
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	rc := core.RunConfig{
		TargetEpochs: w.TargetEpochs,
		Seed:         opts.Seed,
		Parallelism:  opts.Parallelism,
		LocalSteps:   w.FedAvgLocalSteps,
		GroupSize:    opts.GroupSize,
		InterEvery:   opts.InterEvery,
	}
	if opts.OnRound != nil {
		cb := opts.OnRound
		rc.OnRound = func(ri core.RoundInfo) {
			cb(RoundUpdate{
				Scheme: scheme,
				Round:  ri.Round, Time: ri.Time, Loss: ri.Loss,
				Accuracy: ri.Accuracy, Selected: ri.Selected, Bypassed: ri.Bypassed,
			})
		}
	}
	res, err := s.Run(ctx, cluster, rc)
	if err != nil {
		return nil, err
	}
	out := summarize(scheme, res)
	st := cluster.EvalStats()
	out.EvalBatches = st.Batches
	out.EvalSeconds = st.Seconds
	return out, nil
}

// Compare runs every registered scheme on identical clusters and
// returns results keyed by scheme name. See CompareContext.
func Compare(opts Options) (map[string]*Result, error) {
	return CompareContext(context.Background(), opts)
}

// CompareContext runs every registered scheme concurrently (each on its
// own identically seeded cluster, so results match sequential runs
// byte-for-byte) and returns results keyed by scheme name. The schemes
// share an errgroup-style join: the first failure cancels the
// remaining runs, and canceling ctx aborts them all; the error
// reported is the root cause, not a secondary cancellation. A shared
// Options.OnRound is serialized across the runs (updates from
// different schemes never overlap; RoundUpdate.Scheme attributes
// them), so callers need no locking of their own.
func CompareContext(ctx context.Context, opts Options) (map[string]*Result, error) {
	schemes := Schemes()
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if cb := opts.OnRound; cb != nil {
		var mu sync.Mutex
		opts.OnRound = func(u RoundUpdate) {
			mu.Lock()
			defer mu.Unlock()
			cb(u)
		}
	}
	results := make([]*Result, len(schemes))
	errs := make([]error, len(schemes))
	var wg sync.WaitGroup
	for i, scheme := range schemes {
		wg.Add(1)
		go func(i int, scheme string) {
			defer wg.Done()
			res, err := RunContext(ctx, scheme, opts)
			if err != nil {
				errs[i] = fmt.Errorf("%s: %w", scheme, err)
				cancel()
				return
			}
			results[i] = res
		}(i, scheme)
	}
	wg.Wait()
	// Prefer a root-cause error over the context.Canceled noise the
	// shared cancel induced in sibling runs.
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	if firstErr != nil {
		return nil, firstErr
	}
	out := make(map[string]*Result, len(schemes))
	for i, scheme := range schemes {
		out[scheme] = results[i]
	}
	return out, nil
}

// Speedup returns how much faster a reached accuracy target than b.
func Speedup(a, b *Result, target float64) (float64, bool) {
	return metrics.Speedup(a.Series, b.Series, target)
}
