package hadfl

// Canonical-form helpers for Options: validation and content
// addressing. Runs are deterministic given their options (the
// simulation is seeded, and the concurrent runner and parallel tensor
// kernels keep all floating-point reduction orders fixed), so a
// canonical hash of scheme + options is a content address for the
// *result* — the serve layer (internal/serve) uses it to deduplicate
// identical requests and coalesce concurrent duplicates onto one
// in-flight run.

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Validate checks that the options describe a runnable configuration
// after defaults are applied: positive finite powers, a known model,
// non-negative epoch budget and Dirichlet alpha, and a failure
// schedule that names existing devices at non-negative virtual times.
func (o Options) Validate() error {
	o.fill()
	for i, p := range o.Powers {
		if math.IsNaN(p) || math.IsInf(p, 0) || p <= 0 {
			return fmt.Errorf("hadfl: power[%d] = %v, want a positive finite ratio", i, p)
		}
	}
	switch o.Model {
	case "resnet", "vgg":
	default:
		return fmt.Errorf("hadfl: unknown model %q (want resnet or vgg)", o.Model)
	}
	if math.IsNaN(o.TargetEpochs) || math.IsInf(o.TargetEpochs, 0) || o.TargetEpochs < 0 {
		return fmt.Errorf("hadfl: TargetEpochs = %v, want a finite value >= 0", o.TargetEpochs)
	}
	if math.IsNaN(o.NonIIDAlpha) || math.IsInf(o.NonIIDAlpha, 0) || o.NonIIDAlpha < 0 {
		return fmt.Errorf("hadfl: NonIIDAlpha = %v, want a finite value >= 0", o.NonIIDAlpha)
	}
	for id, at := range o.FailAt {
		if id < 0 || id >= len(o.Powers) {
			return fmt.Errorf("hadfl: FailAt device %d outside cluster of %d", id, len(o.Powers))
		}
		if math.IsNaN(at) || math.IsInf(at, 0) || at < 0 {
			return fmt.Errorf("hadfl: FailAt[%d] = %v, want a finite non-negative virtual time", id, at)
		}
	}
	if o.GroupSize < 0 {
		return fmt.Errorf("hadfl: GroupSize = %d, want >= 0 (0 = scheme default)", o.GroupSize)
	}
	if o.InterEvery < 0 {
		return fmt.Errorf("hadfl: InterEvery = %d, want >= 0 (0 = scheme default)", o.InterEvery)
	}
	return nil
}

// Canonical renders the options in a normalized textual form: defaults
// filled, failure schedule sorted by device, floats in shortest
// round-trip notation. Two Options values with the same canonical form
// produce identical results under the same scheme. OnRound is
// excluded — progress callbacks observe a run but do not change it —
// and so is Parallelism: the concurrent runner joins per-device
// partials in a deterministic order, so every parallelism level
// produces byte-identical results (enforced by TestParallelDeterminism)
// and requests differing only in Parallelism share one cache entry.
func (o Options) Canonical() string {
	o.fill()
	var b strings.Builder
	b.WriteString("powers=[")
	for i, p := range o.Powers {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(formatFloat(p))
	}
	b.WriteString("];model=")
	b.WriteString(o.Model)
	b.WriteString(";full=")
	b.WriteString(strconv.FormatBool(o.Full))
	b.WriteString(";epochs=")
	b.WriteString(formatFloat(o.TargetEpochs))
	b.WriteString(";alpha=")
	b.WriteString(formatFloat(o.NonIIDAlpha))
	b.WriteString(";seed=")
	b.WriteString(strconv.FormatInt(o.Seed, 10))
	b.WriteString(";fail={")
	ids := make([]int, 0, len(o.FailAt))
	for id := range o.FailAt {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for i, id := range ids {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(id))
		b.WriteByte('=')
		b.WriteString(formatFloat(o.FailAt[id]))
	}
	// The hierarchy knobs render even at their zero values so the form
	// stays self-describing; 0 means "scheme default", which the grouped
	// scheme resolves to 2/2, so 0 and an explicit 2 are distinct
	// canonical forms by design (the default may evolve with the paper
	// profile without silently aliasing old fingerprints).
	b.WriteString("};group=")
	b.WriteString(strconv.Itoa(o.GroupSize))
	b.WriteString(";inter=")
	b.WriteString(strconv.Itoa(o.InterEvery))
	return b.String()
}

// Fingerprint returns a content address for the result of running
// scheme with opts: the hex SHA-256 of the scheme name and the
// canonical option form. Identical fingerprints mean identical runs
// (same curve, same final model), so results may be cached and
// concurrent duplicate requests coalesced. Returns an error if the
// scheme is not registered or the options do not validate.
func Fingerprint(scheme string, opts Options) (string, error) {
	if !ValidScheme(scheme) {
		return "", unknownSchemeError(scheme)
	}
	if err := opts.Validate(); err != nil {
		return "", err
	}
	sum := sha256.Sum256([]byte(scheme + "|" + opts.Canonical()))
	return hex.EncodeToString(sum[:]), nil
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
